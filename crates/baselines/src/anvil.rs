//! ANVIL (paper ref. \[19\]): a multi-head attention neural network with a
//! Euclidean-distance matching stage for smartphone-invariant localization.
//!
//! The reproduction follows the published architecture at a functional level:
//! the normalised fingerprint is linearly embedded into a short token
//! sequence, a multi-head self-attention block extracts device-invariant
//! features, and a projection head produces an embedding. Training minimises
//! classification loss; at inference the framework matches the query
//! embedding to per-RP centroids by Euclidean distance (the "matching"
//! stage), falling back to the classifier logits when centroids are missing.

use std::path::Path;

use autograd::{Tape, Var};
use fingerprint::{FingerprintDataset, FingerprintObservation};
use graph::{ExprId, Graph, GraphError, PlanCache};
use nn::optim::{zero_grads, Adam, Optimizer};
use nn::{Activation, Dense, Init, Layer, LayerNorm, Mlp, MultiHeadSelfAttention, Param, Session};
use tensor::rng::SeededRng;
use tensor::Tensor;
use vital::{Checkpoint, CheckpointError, DamConfig, Localizer, ModelKind, Result, VitalError};

use crate::features::{rows_to_tensor, tensor_to_rows};
use crate::{FeatureExtractor, FeatureMode};

/// Number of tokens the fingerprint is folded into before attention.
const TOKENS: usize = 8;

/// The attention-based embedding network shared by training and inference.
#[derive(Debug)]
struct AnvilNetwork {
    token_embed: Dense,
    norm: LayerNorm,
    attention: MultiHeadSelfAttention,
    head: Mlp,
    embed_head: Mlp,
    token_width: usize,
}

impl AnvilNetwork {
    fn new(rng: &mut SeededRng, feature_width: usize, num_classes: usize) -> Result<Self> {
        let token_width = feature_width.div_ceil(TOKENS);
        let d_model = 32;
        Ok(AnvilNetwork {
            token_embed: Dense::new(rng, token_width, d_model, Init::Xavier),
            norm: LayerNorm::new(d_model),
            attention: MultiHeadSelfAttention::new(rng, d_model, 4)?,
            head: Mlp::new(rng, &[d_model, 64, num_classes], Activation::Relu),
            embed_head: Mlp::new(rng, &[d_model, 32], Activation::Relu),
            token_width,
        })
    }

    /// Folds a flat feature vector into `TOKENS` equal-width tokens (zero
    /// padded) for the attention block.
    fn tokenize(&self, features: &[f32]) -> Result<Tensor> {
        let mut padded = features.to_vec();
        padded.resize(self.token_width * TOKENS, 0.0);
        Ok(Tensor::from_vec(padded, &[TOKENS, self.token_width])?)
    }

    /// Returns `(pooled_embedding, class_logits)` for one sample.
    fn forward_sample<'t>(
        &self,
        session: &Session<'t>,
        features: &[f32],
    ) -> Result<(Var<'t>, Var<'t>)> {
        let tokens = session.constant(self.tokenize(features)?);
        let embedded = self.token_embed.forward(session, tokens)?;
        let attended = self
            .attention
            .forward(session, self.norm.forward(session, embedded)?)?
            .add(embedded)?;
        let pooled = attended.mean_pool_rows()?;
        let embedding = self.embed_head.forward(session, pooled)?;
        let logits = self.head.forward(session, pooled)?;
        Ok((embedding, logits))
    }

    /// Appends one sample's forward pass to an expression graph, packing
    /// the two heads into a single `[1, embed ‖ classes]` output row —
    /// exactly mirroring the eval-mode [`AnvilNetwork::forward_sample`].
    fn push_graph_sample(
        &self,
        g: &mut Graph,
        tokens: ExprId,
    ) -> std::result::Result<ExprId, GraphError> {
        let embedded = self.token_embed.push_graph(g, tokens)?;
        let normed = self.norm.push_graph(g, embedded)?;
        let attn = self.attention.push_graph(g, normed)?;
        let attended = g.binary(attn, embedded, tensor::BinaryOp::Add)?;
        let pooled = g.mean_row_blocks(attended, TOKENS)?;
        let embedding = self.embed_head.push_graph(g, pooled)?;
        let logits = self.head.push_graph(g, pooled)?;
        g.concat_cols(&[embedding, logits])
    }
}

impl Layer for AnvilNetwork {
    fn params(&self) -> Vec<Param> {
        let mut params = self.token_embed.params();
        params.extend(self.norm.params());
        params.extend(self.attention.params());
        params.extend(self.head.params());
        params.extend(self.embed_head.params());
        params
    }
}

/// The ANVIL localizer.
#[derive(Debug)]
pub struct AnvilLocalizer {
    seed: u64,
    extractor: FeatureExtractor,
    epochs: usize,
    network: Option<AnvilNetwork>,
    centroids: Vec<Option<Vec<f32>>>,
    num_classes: usize,
    /// Compiled attention-network plans, keyed by `(batch, weight stamp)`.
    plan_cache: PlanCache,
}

impl AnvilLocalizer {
    /// Creates an untrained ANVIL instance.
    pub fn new(seed: u64) -> Self {
        AnvilLocalizer {
            seed,
            extractor: FeatureExtractor::new(FeatureMode::MeanChannel),
            epochs: 30,
            network: None,
            centroids: Vec::new(),
            num_classes: 0,
            plan_cache: PlanCache::new(),
        }
    }

    /// Bolts the VITAL DAM onto the input pipeline (paper §VI.D).
    pub fn with_dam(mut self, dam: Option<DamConfig>) -> Self {
        self.extractor = FeatureExtractor::new(FeatureMode::MeanChannel).with_dam(dam);
        self
    }

    /// Overrides the number of training epochs (default 30).
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Serializes the attention network and the per-RP embedding centroids
    /// into a [`Checkpoint`].
    ///
    /// # Errors
    /// Returns [`VitalError::NotFitted`] before [`Localizer::fit`].
    pub fn to_checkpoint(&self) -> Result<Checkpoint> {
        let network = self.network.as_ref().ok_or(VitalError::NotFitted)?;
        let present: Vec<&Vec<f32>> = self.centroids.iter().flatten().collect();
        let embed_width = present.first().map(|c| c.len()).unwrap_or(0);
        let present_rows: Vec<Vec<f32>> = present.into_iter().cloned().collect();

        let mut ckpt = Checkpoint::new(ModelKind::Anvil);
        ckpt.set_dam_config(self.extractor.dam_config());
        ckpt.push_ints("seed", vec![self.seed]);
        // The tokenizer zero-pads features to `token_width × TOKENS`, so
        // the padded width reconstructs an identical network geometry.
        ckpt.push_ints(
            "dims",
            vec![
                self.epochs as u64,
                self.num_classes as u64,
                (network.token_width * TOKENS) as u64,
                embed_width as u64,
            ],
        );
        ckpt.push_state("network", network.state_dict());
        ckpt.push_ints(
            "centroid_mask",
            self.centroids
                .iter()
                .map(|c| u64::from(c.is_some()))
                .collect(),
        );
        ckpt.push_tensor("centroids", rows_to_tensor(&present_rows, embed_width)?);
        Ok(ckpt)
    }

    /// Restores a fitted ANVIL instance from a [`Checkpoint`]: the
    /// attention network is rebuilt with the stored token geometry and its
    /// weights restored, so embedding matching is bit-identical to the
    /// saved instance's.
    ///
    /// # Errors
    /// Returns typed checkpoint errors on kind mismatch, missing entries or
    /// weight-shape drift.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self> {
        ckpt.expect_kind(ModelKind::Anvil)?;
        let seed = ckpt.ints("seed")?.first().copied().unwrap_or(0);
        let dims = ckpt.usizes("dims")?;
        let [epochs, num_classes, padded_width, _embed_width] = dims[..] else {
            return Err(CheckpointError::Corrupt(format!(
                "expected 4 dimension entries, found {}",
                dims.len()
            ))
            .into());
        };
        let mut anvil = AnvilLocalizer::new(seed)
            .with_dam(ckpt.dam_config().copied())
            .with_epochs(epochs);
        anvil.num_classes = num_classes;

        let mut init_rng = SeededRng::new(seed.wrapping_add(1));
        let network = AnvilNetwork::new(&mut init_rng, padded_width, num_classes)?;
        network.load_state(ckpt.state("network")?)?;
        anvil.network = Some(network);

        let mask = ckpt.usizes("centroid_mask")?;
        if mask.len() != num_classes {
            return Err(CheckpointError::Corrupt(format!(
                "centroid mask covers {} classes, model has {num_classes}",
                mask.len()
            ))
            .into());
        }
        let mut rows = tensor_to_rows(ckpt.tensor("centroids")?)?.into_iter();
        anvil.centroids = mask
            .iter()
            .map(|&present| {
                if present != 0 {
                    rows.next()
                        .ok_or_else(|| {
                            VitalError::from(CheckpointError::Corrupt(
                                "fewer centroid rows than mask entries".into(),
                            ))
                        })
                        .map(Some)
                } else {
                    Ok(None)
                }
            })
            .collect::<Result<Vec<_>>>()?;
        if rows.next().is_some() {
            return Err(
                CheckpointError::Corrupt("more centroid rows than mask entries".into()).into(),
            );
        }
        Ok(anvil)
    }

    fn embed(&self, features: &[f32]) -> Result<(Vec<f32>, Vec<f32>)> {
        let network = self.network.as_ref().ok_or(VitalError::NotFitted)?;
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let (embedding, logits) = network.forward_sample(&session, features)?;
        Ok((embedding.value().into_vec(), logits.value().into_vec()))
    }

    /// Embeddings and logits for a batch of feature vectors through the
    /// cached compiled plan: one `[embedding ‖ logits]` row per sample.
    ///
    /// Attention couples each sample's tokens, so the graph unrolls one
    /// forward per sample over row slices of the stacked token input (the
    /// same stacking the compiled ViT uses); the shared weight constants
    /// dedup across the unroll.
    fn embed_matrix(&self, features: &[Vec<f32>]) -> Result<Tensor> {
        let network = self.network.as_ref().ok_or(VitalError::NotFitted)?;
        let samples = features.len();
        let width = network.token_width;
        let mut stacked = Vec::with_capacity(samples * TOKENS * width);
        for f in features {
            stacked.extend(network.tokenize(f)?.into_vec());
        }
        let x = Tensor::from_vec(stacked, &[samples * TOKENS, width])?;
        let entry =
            self.plan_cache
                .get_or_build(samples, nn::weight_stamp(&network.params()), || {
                    let mut g = Graph::new();
                    let input = g.input(samples * TOKENS, width);
                    let mut rows = Vec::with_capacity(samples);
                    for s in 0..samples {
                        let tokens = if samples == 1 {
                            input
                        } else {
                            g.slice_rows(input, s * TOKENS, (s + 1) * TOKENS)?
                        };
                        rows.push(network.push_graph_sample(&mut g, tokens)?);
                    }
                    let out = if samples == 1 {
                        rows[0]
                    } else {
                        g.concat_rows(&rows)?
                    };
                    Ok((g, out))
                })?;
        Ok(entry.execute(&[&x])?)
    }

    /// Number of compiled network plans currently cached (one per batch
    /// shape served since the last weight change).
    pub fn cached_plans(&self) -> usize {
        self.plan_cache.len()
    }

    /// [`Localizer::localize_batch`] through the eager (tape) forward — the
    /// uncompiled reference the parity tests compare against.
    ///
    /// # Errors
    /// Returns [`VitalError::NotFitted`] before [`Localizer::fit`].
    pub fn localize_batch_eager(
        &self,
        observations: &[FingerprintObservation],
    ) -> Result<Vec<usize>> {
        let network = self.network.as_ref().ok_or(VitalError::NotFitted)?;
        let mut predictions = Vec::with_capacity(observations.len());
        for chunk in observations.chunks(crate::features::INFERENCE_CHUNK) {
            let tape = Tape::new();
            let session = Session::new(&tape, false, 0);
            for features in self.extractor.extract_clean_batch(chunk) {
                let (embedding, logits) = network.forward_sample(&session, &features)?;
                predictions.push(
                    self.match_embedding(
                        &embedding.value().into_vec(),
                        &logits.value().into_vec(),
                    )?,
                );
            }
        }
        Ok(predictions)
    }

    /// Euclidean matching of one query embedding against the per-RP
    /// centroids, falling back to the classifier argmax when no centroids
    /// exist (degenerate training set).
    fn match_embedding(&self, embedding: &[f32], logits: &[f32]) -> Result<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (label, centroid) in self.centroids.iter().enumerate() {
            let Some(centroid) = centroid else { continue };
            let d: f32 = centroid
                .iter()
                .zip(embedding)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((label, d));
            }
        }
        match best {
            Some((label, _)) => Ok(label),
            None => {
                let logits = Tensor::from_vec(logits.to_vec(), &[logits.len()])?;
                Ok(logits.argmax()?)
            }
        }
    }
}

impl Localizer for AnvilLocalizer {
    fn name(&self) -> &str {
        "ANVIL"
    }

    fn fit(&mut self, train: &FingerprintDataset) -> Result<()> {
        if train.is_empty() {
            return Err(VitalError::InvalidDataset("empty training set".into()));
        }
        self.num_classes = train.num_rps();
        let mut rng = SeededRng::new(self.seed);
        let mut init_rng = SeededRng::new(self.seed.wrapping_add(1));
        let feature_width = self.extractor.feature_width(train.num_aps());
        let network = AnvilNetwork::new(&mut init_rng, feature_width, self.num_classes)?;
        let params = network.params();
        let mut optimizer = Adam::new(2e-3);

        let observations = train.observations();
        let mut order: Vec<usize> = (0..observations.len()).collect();
        let batch = 16;
        for epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                let tape = Tape::new();
                let session = Session::new(&tape, true, self.seed.wrapping_add(epoch as u64));
                let mut logits = Vec::with_capacity(chunk.len());
                let mut labels = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let features = self.extractor.extract(&observations[i], true, &mut rng);
                    let (_, sample_logits) = network.forward_sample(&session, &features)?;
                    logits.push(sample_logits);
                    labels.push(observations[i].rp_label);
                }
                let stacked = Var::concat_rows(&logits)?;
                let loss = stacked.softmax_cross_entropy(&labels)?;
                session.backward(loss)?;
                optimizer.step(&params);
                zero_grads(&params);
            }
        }
        self.network = Some(network);

        // Euclidean-matching stage: per-RP embedding centroids over the clean
        // training fingerprints.
        let mut sums: Vec<(Vec<f32>, usize)> = vec![(Vec::new(), 0); self.num_classes];
        let mut clean_rng = SeededRng::new(self.seed.wrapping_add(2));
        for observation in observations {
            let features = self.extractor.extract(observation, false, &mut clean_rng);
            let (embedding, _) = self.embed(&features)?;
            let slot = &mut sums[observation.rp_label];
            if slot.0.is_empty() {
                slot.0 = vec![0.0; embedding.len()];
            }
            for (s, e) in slot.0.iter_mut().zip(&embedding) {
                *s += e;
            }
            slot.1 += 1;
        }
        self.centroids = sums
            .into_iter()
            .map(|(sum, count)| {
                if count == 0 {
                    None
                } else {
                    Some(sum.into_iter().map(|v| v / count as f32).collect())
                }
            })
            .collect();
        Ok(())
    }

    fn predict(&self, observation: &FingerprintObservation) -> Result<usize> {
        let mut rng = SeededRng::new(0);
        let features = self.extractor.extract(observation, false, &mut rng);
        let (embedding, logits) = self.embed(&features)?;
        self.match_embedding(&embedding, &logits)
    }

    fn localize_batch(&self, observations: &[FingerprintObservation]) -> Result<Vec<usize>> {
        let network = self.network.as_ref().ok_or(VitalError::NotFitted)?;
        let embed_width = network.embed_head.out_features();
        let mut predictions = Vec::with_capacity(observations.len());
        for chunk in observations.chunks(crate::features::INFERENCE_CHUNK) {
            // One compiled execution per chunk: each output row packs the
            // sample's `[embedding ‖ logits]`, split for Euclidean matching.
            let features = self.extractor.extract_clean_batch(chunk);
            let packed = self.embed_matrix(&features)?;
            let row_width = packed.cols()?;
            for row in packed.as_slice().chunks_exact(row_width) {
                let (embedding, logits) = row.split_at(embed_width);
                predictions.push(self.match_embedding(embedding, logits)?);
            }
        }
        Ok(predictions)
    }

    fn save(&self, path: &Path) -> Result<()> {
        self.to_checkpoint()?.write_to(path)
    }

    fn load(path: &Path) -> Result<Self> {
        AnvilLocalizer::from_checkpoint(&Checkpoint::read_from(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingerprint::{base_devices, DatasetConfig};
    use sim_radio::building_1;
    use vital::evaluate_localizer;

    #[test]
    fn unfitted_errors_and_name() {
        let anvil = AnvilLocalizer::new(0);
        assert_eq!(anvil.name(), "ANVIL");
        let building = building_1();
        let ds = FingerprintDataset::collect(
            &building,
            &base_devices()[..1],
            &DatasetConfig {
                captures_per_rp: 1,
                samples_per_capture: 2,
                seed: 0,
            },
        );
        assert!(anvil.predict(&ds.observations()[0]).is_err());
        let mut unfit = AnvilLocalizer::new(0);
        assert!(unfit.fit(&ds.filter_devices(&["NONE"])).is_err());
    }

    #[test]
    fn trains_and_localizes_better_than_chance() {
        let building = building_1();
        let ds = FingerprintDataset::collect(
            &building,
            &base_devices()[..2],
            &DatasetConfig {
                captures_per_rp: 2,
                samples_per_capture: 3,
                seed: 2,
            },
        );
        let split = ds.split(0.8, 5);
        let mut anvil = AnvilLocalizer::new(3).with_epochs(12);
        anvil.fit(&split.train).unwrap();
        let report = evaluate_localizer(&anvil, &split.test, &building).unwrap();
        assert!(
            report.mean_error_m() < 10.0,
            "ANVIL mean error {} m",
            report.mean_error_m()
        );
    }

    #[test]
    fn dam_variant_trains() {
        let building = building_1();
        let ds = FingerprintDataset::collect(
            &building,
            &base_devices()[..1],
            &DatasetConfig {
                captures_per_rp: 1,
                samples_per_capture: 2,
                seed: 6,
            },
        );
        let mut anvil = AnvilLocalizer::new(1)
            .with_dam(Some(DamConfig::default()))
            .with_epochs(3);
        anvil.fit(&ds).unwrap();
        assert!(anvil.predict(&ds.observations()[0]).unwrap() < ds.num_rps());
    }
}
