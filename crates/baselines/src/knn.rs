//! Classical K-nearest-neighbour fingerprint matching, including the
//! calibration-free SSD and HLF variants (paper ref. \[18\]).

use std::path::Path;

use fingerprint::{FingerprintDataset, FingerprintObservation};
use tensor::rng::SeededRng;
use vital::{Checkpoint, CheckpointError, Localizer, ModelKind, Result, VitalError};

use crate::features::{rows_to_tensor, tensor_to_rows};
use crate::{FeatureExtractor, FeatureMode};

/// K-nearest-neighbour localizer over a configurable fingerprint
/// representation.
///
/// With [`FeatureMode::MeanChannel`] this is the classical RSSI fingerprint
/// matcher; with [`FeatureMode::Ssd`] / [`FeatureMode::Hlf`] it reproduces the
/// calibration-free baselines discussed in related work.
#[derive(Debug, Clone)]
pub struct KnnLocalizer {
    k: usize,
    extractor: FeatureExtractor,
    name: String,
    train_features: Vec<Vec<f32>>,
    train_labels: Vec<usize>,
}

impl KnnLocalizer {
    /// Creates a KNN localizer with `k` neighbours over the given feature
    /// representation.
    pub fn new(k: usize, mode: FeatureMode) -> Self {
        let name = match mode {
            FeatureMode::MeanChannel => "KNN",
            FeatureMode::ThreeChannel => "KNN-3ch",
            FeatureMode::Ssd => "KNN-SSD",
            FeatureMode::Hlf => "KNN-HLF",
        };
        KnnLocalizer {
            k: k.max(1),
            extractor: FeatureExtractor::new(mode),
            name: name.to_string(),
            train_features: Vec::new(),
            train_labels: Vec::new(),
        }
    }

    /// Number of neighbours considered.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Serializes the fitted fingerprint store (features + labels) and the
    /// matcher configuration into a [`Checkpoint`].
    ///
    /// # Errors
    /// Returns [`VitalError::NotFitted`] before [`Localizer::fit`].
    pub fn to_checkpoint(&self) -> Result<Checkpoint> {
        if self.train_features.is_empty() {
            return Err(VitalError::NotFitted);
        }
        let width = self.train_features[0].len();
        let mut ckpt = Checkpoint::new(ModelKind::Knn);
        ckpt.push_ints("k", vec![self.k as u64]);
        ckpt.push_text("mode", self.extractor.mode().as_str());
        ckpt.push_tensor("features", rows_to_tensor(&self.train_features, width)?);
        ckpt.push_ints(
            "labels",
            self.train_labels.iter().map(|&l| l as u64).collect(),
        );
        Ok(ckpt)
    }

    /// Restores a fitted matcher from a [`Checkpoint`]; predictions are
    /// bit-identical to the saved instance's.
    ///
    /// # Errors
    /// Returns typed checkpoint errors on kind mismatch, missing entries or
    /// inconsistent store sizes.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self> {
        ckpt.expect_kind(ModelKind::Knn)?;
        let k = ckpt.usizes("k")?.first().copied().unwrap_or(1);
        let mode_text = ckpt.text("mode")?;
        let mode = FeatureMode::parse(mode_text).ok_or_else(|| {
            CheckpointError::Corrupt(format!("unknown feature mode {mode_text:?}"))
        })?;
        let features = tensor_to_rows(ckpt.tensor("features")?)?;
        let labels = ckpt.usizes("labels")?;
        if features.len() != labels.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} stored fingerprints but {} labels",
                features.len(),
                labels.len()
            ))
            .into());
        }
        let mut knn = KnnLocalizer::new(k, mode);
        knn.train_features = features;
        knn.train_labels = labels;
        Ok(knn)
    }

    fn vote(&self, query: &[f32]) -> Result<usize> {
        if self.train_features.is_empty() {
            return Err(VitalError::NotFitted);
        }
        // Distance to every stored fingerprint.
        let mut scored: Vec<(f32, usize)> = self
            .train_features
            .iter()
            .zip(&self.train_labels)
            .map(|(f, &label)| {
                let d: f32 = f
                    .iter()
                    .zip(query)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                (d, label)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored.truncate(self.k);
        // Distance-weighted vote.
        let mut votes: std::collections::HashMap<usize, f32> = std::collections::HashMap::new();
        for (d, label) in scored {
            *votes.entry(label).or_insert(0.0) += 1.0 / (d + 1e-3);
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(label, _)| label)
            .ok_or(VitalError::NotFitted)
    }
}

impl Localizer for KnnLocalizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, train: &FingerprintDataset) -> Result<()> {
        if train.is_empty() {
            return Err(VitalError::InvalidDataset("empty training set".into()));
        }
        let mut rng = SeededRng::new(0);
        self.train_features = train
            .observations()
            .iter()
            .map(|o| self.extractor.extract(o, false, &mut rng))
            .collect();
        self.train_labels = train.labels();
        Ok(())
    }

    fn predict(&self, observation: &FingerprintObservation) -> Result<usize> {
        let mut rng = SeededRng::new(0);
        let query = self.extractor.extract(observation, false, &mut rng);
        self.vote(&query)
    }

    fn localize_batch(&self, observations: &[FingerprintObservation]) -> Result<Vec<usize>> {
        // Each query scans the whole fingerprint memory independently, so
        // the batch fans out across threads (the localizer is immutable
        // during inference and every query uses its own fixed-seed RNG).
        parallel::parallel_map(observations, |observation| {
            let mut rng = SeededRng::new(0);
            let query = self.extractor.extract(observation, false, &mut rng);
            self.vote(&query)
        })
        .into_iter()
        .collect()
    }

    fn save(&self, path: &Path) -> Result<()> {
        self.to_checkpoint()?.write_to(path)
    }

    fn load(path: &Path) -> Result<Self> {
        KnnLocalizer::from_checkpoint(&Checkpoint::read_from(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingerprint::{base_devices, extended_devices, DatasetConfig};
    use sim_radio::building_1;
    use vital::evaluate_localizer;

    fn dataset(devices: usize) -> (sim_radio::Building, FingerprintDataset) {
        let building = building_1();
        let ds = FingerprintDataset::collect(
            &building,
            &base_devices()[..devices],
            &DatasetConfig {
                captures_per_rp: 2,
                samples_per_capture: 3,
                seed: 3,
            },
        );
        (building, ds)
    }

    #[test]
    fn unfitted_predicts_error_and_k_is_clamped() {
        let knn = KnnLocalizer::new(0, FeatureMode::MeanChannel);
        assert_eq!(knn.k(), 1);
        let (_, ds) = dataset(1);
        assert!(knn.predict(&ds.observations()[0]).is_err());
    }

    #[test]
    fn same_device_localization_is_accurate() {
        let (building, ds) = dataset(1);
        let split = ds.split(0.8, 1);
        let mut knn = KnnLocalizer::new(3, FeatureMode::MeanChannel);
        knn.fit(&split.train).unwrap();
        let report = evaluate_localizer(&knn, &split.test, &building).unwrap();
        // Single-device fingerprinting is an easy problem: a couple of metres.
        assert!(
            report.mean_error_m() < 4.0,
            "KNN same-device error {}",
            report.mean_error_m()
        );
    }

    #[test]
    fn ssd_localizes_an_unseen_device_reasonably() {
        // Train on base devices, test on an extended (unseen) device; the
        // calibration-free SSD representation should still land within a few
        // metres (random guessing on the 62 m path averages >20 m).
        let building = building_1();
        let train = FingerprintDataset::collect(
            &building,
            &base_devices()[..3],
            &DatasetConfig {
                captures_per_rp: 1,
                samples_per_capture: 3,
                seed: 4,
            },
        );
        let test = FingerprintDataset::collect(
            &building,
            &extended_devices()[..1],
            &DatasetConfig {
                captures_per_rp: 1,
                samples_per_capture: 3,
                seed: 5,
            },
        );
        let mut ssd = KnnLocalizer::new(5, FeatureMode::Ssd);
        ssd.fit(&train).unwrap();
        let ssd_report = evaluate_localizer(&ssd, &test, &building).unwrap();
        assert!(
            ssd_report.mean_error_m() < 8.0,
            "SSD unseen-device error {} m",
            ssd_report.mean_error_m()
        );
    }

    #[test]
    fn names_reflect_mode() {
        assert_eq!(KnnLocalizer::new(3, FeatureMode::Ssd).name(), "KNN-SSD");
        assert_eq!(KnnLocalizer::new(3, FeatureMode::Hlf).name(), "KNN-HLF");
        assert_eq!(
            KnnLocalizer::new(3, FeatureMode::ThreeChannel).name(),
            "KNN-3ch"
        );
    }

    #[test]
    fn rejects_empty_training_set() {
        let (_, ds) = dataset(1);
        let empty = ds.filter_devices(&["NONE"]);
        let mut knn = KnnLocalizer::new(3, FeatureMode::MeanChannel);
        assert!(knn.fit(&empty).is_err());
    }
}
