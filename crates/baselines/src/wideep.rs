//! WiDeep (paper ref. \[22\]): a denoising stacked autoencoder feeding a
//! Gaussian-process classifier.
//!
//! A full Gaussian-process classifier is replaced by a Gaussian
//! (RBF) kernel classifier over the autoencoder codes — a Nadaraya–Watson
//! estimator of the class posterior, which is the GP predictive mean under a
//! fixed kernel and i.i.d. class labels. This keeps the baseline faithful to
//! its published structure (denoising SAE → Gaussian kernel inference) while
//! remaining tractable inside the reproduction; the substitution is recorded
//! in `DESIGN.md`.

use std::path::Path;

use fingerprint::{FingerprintDataset, FingerprintObservation};
use graph::{Graph, PlanCache};
use nn::{Layer, StackedAutoencoder};
use tensor::rng::SeededRng;
use tensor::Tensor;
use vital::{Checkpoint, CheckpointError, DamConfig, Localizer, ModelKind, Result, VitalError};

use crate::features::{rows_to_tensor, tensor_to_rows};
use crate::{FeatureExtractor, FeatureMode};

/// The WiDeep localizer: denoising SAE + Gaussian-kernel classification.
#[derive(Debug)]
pub struct WiDeepLocalizer {
    seed: u64,
    extractor: FeatureExtractor,
    pretrain_epochs: usize,
    /// Corruption noise used during denoising pre-training.
    corruption_std: f32,
    /// RBF kernel length scale in code space.
    length_scale: f32,
    autoencoder: Option<StackedAutoencoder>,
    codes: Vec<Vec<f32>>,
    labels: Vec<usize>,
    num_classes: usize,
    /// Compiled SAE-encoder plans, keyed by `(batch, weight stamp)`.
    plan_cache: PlanCache,
}

impl WiDeepLocalizer {
    /// Creates an untrained WiDeep instance.
    pub fn new(seed: u64) -> Self {
        WiDeepLocalizer {
            seed,
            extractor: FeatureExtractor::new(FeatureMode::MeanChannel),
            pretrain_epochs: 60,
            corruption_std: 0.08,
            length_scale: 0.6,
            autoencoder: None,
            codes: Vec::new(),
            labels: Vec::new(),
            num_classes: 0,
            plan_cache: PlanCache::new(),
        }
    }

    /// Bolts the VITAL DAM onto the input pipeline (paper §VI.D).
    ///
    /// The paper observes WiDeep tends to *overfit* when DAM is added
    /// (its own denoising SAE already aggressively perturbs the input); that
    /// behaviour emerges naturally here because DAM noise is applied on top
    /// of the SAE corruption noise.
    pub fn with_dam(mut self, dam: Option<DamConfig>) -> Self {
        self.extractor = FeatureExtractor::new(FeatureMode::MeanChannel).with_dam(dam);
        self
    }

    /// Overrides the SAE pre-training epochs (default 60).
    pub fn with_pretrain_epochs(mut self, epochs: usize) -> Self {
        self.pretrain_epochs = epochs.max(1);
        self
    }

    /// Builds the denoising SAE for a feature width — shared by training
    /// and checkpoint restoration so both construct identical
    /// architectures (any drift would silently break the bit-identical
    /// reload contract).
    fn build_autoencoder(seed: u64, width: usize) -> StackedAutoencoder {
        let mut init_rng = SeededRng::new(seed.wrapping_add(1));
        StackedAutoencoder::new(&mut init_rng, width, &[width.max(16), (width / 2).max(8)])
    }

    /// Serializes the denoising autoencoder and the kernel classifier's
    /// code memory into a [`Checkpoint`].
    ///
    /// # Errors
    /// Returns [`VitalError::NotFitted`] before [`Localizer::fit`].
    pub fn to_checkpoint(&self) -> Result<Checkpoint> {
        let ae = self.autoencoder.as_ref().ok_or(VitalError::NotFitted)?;
        let code_width = self.codes.first().map(Vec::len).unwrap_or(0);
        let mut ckpt = Checkpoint::new(ModelKind::WiDeep);
        ckpt.set_dam_config(self.extractor.dam_config());
        ckpt.push_ints("seed", vec![self.seed]);
        ckpt.push_ints(
            "dims",
            vec![
                self.pretrain_epochs as u64,
                self.num_classes as u64,
                ae.input_dim() as u64,
            ],
        );
        ckpt.push_scalar("corruption_std", f64::from(self.corruption_std));
        ckpt.push_scalar("length_scale", f64::from(self.length_scale));
        ckpt.push_state("autoencoder", ae.state_dict());
        ckpt.push_tensor("codes", rows_to_tensor(&self.codes, code_width)?);
        ckpt.push_ints("labels", self.labels.iter().map(|&l| l as u64).collect());
        Ok(ckpt)
    }

    /// Restores a fitted WiDeep instance from a [`Checkpoint`]; kernel
    /// inference over the restored codes is bit-identical to the saved
    /// instance's.
    ///
    /// # Errors
    /// Returns typed checkpoint errors on kind mismatch, missing entries or
    /// weight-shape drift.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self> {
        ckpt.expect_kind(ModelKind::WiDeep)?;
        let seed = ckpt.ints("seed")?.first().copied().unwrap_or(0);
        let dims = ckpt.usizes("dims")?;
        let [pretrain_epochs, num_classes, width] = dims[..] else {
            return Err(CheckpointError::Corrupt(format!(
                "expected 3 dimension entries, found {}",
                dims.len()
            ))
            .into());
        };
        let mut wideep = WiDeepLocalizer::new(seed)
            .with_dam(ckpt.dam_config().copied())
            .with_pretrain_epochs(pretrain_epochs);
        wideep.num_classes = num_classes;
        wideep.corruption_std = ckpt.scalar("corruption_std")? as f32;
        wideep.length_scale = ckpt.scalar("length_scale")? as f32;

        // Rebuild the SAE exactly as `fit` does, then restore its weights.
        let autoencoder = Self::build_autoencoder(seed, width);
        autoencoder.load_state(ckpt.state("autoencoder")?)?;
        wideep.autoencoder = Some(autoencoder);

        wideep.codes = tensor_to_rows(ckpt.tensor("codes")?)?;
        wideep.labels = ckpt.usizes("labels")?;
        if wideep.codes.len() != wideep.labels.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} stored codes but {} labels",
                wideep.codes.len(),
                wideep.labels.len()
            ))
            .into());
        }
        Ok(wideep)
    }

    fn encode(&self, features: &[f32]) -> Result<Vec<f32>> {
        let ae = self.autoencoder.as_ref().ok_or(VitalError::NotFitted)?;
        let x = Tensor::from_vec(features.to_vec(), &[1, features.len()])?;
        Ok(ae.encode_inference(&x)?.into_vec())
    }

    /// Encodes a `[batch, width]` query stack through the cached compiled
    /// SAE-encoder plan; bit-identical to
    /// [`StackedAutoencoder::encode_inference`] on the same stack.
    fn encode_matrix(&self, features: &Tensor) -> Result<Tensor> {
        let ae = self.autoencoder.as_ref().ok_or(VitalError::NotFitted)?;
        let (rows, cols) = features.shape().as_matrix()?;
        let entry = self
            .plan_cache
            .get_or_build(rows, nn::weight_stamp(&ae.params()), || {
                let mut g = Graph::new();
                let x = g.input(rows, cols);
                let code = ae.encode_push_graph(&mut g, x)?;
                Ok((g, code))
            })?;
        Ok(entry.execute(&[features])?)
    }

    /// Number of compiled encoder plans currently cached (one per batch
    /// shape served since the last weight change).
    pub fn cached_plans(&self) -> usize {
        self.plan_cache.len()
    }

    /// Gaussian-kernel classification of a stack of encoded queries; the
    /// scoring only touches Sync state, so queries fan out across threads.
    fn classify_codes(&self, codes: &Tensor) -> Result<Vec<usize>> {
        let code_width = codes.cols()?;
        let queries: Vec<Vec<f32>> = codes
            .as_slice()
            .chunks_exact(code_width)
            .map(<[f32]>::to_vec)
            .collect();
        let memory_codes = &self.codes;
        let memory_labels = &self.labels;
        let gamma = 1.0 / (2.0 * self.length_scale * self.length_scale);
        let num_classes = self.num_classes;
        let scored = parallel::parallel_map(&queries, |query| {
            let mut posterior = vec![0.0f32; num_classes];
            for (code, &label) in memory_codes.iter().zip(memory_labels) {
                let d2: f32 = code.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
                posterior[label] += (-gamma * d2).exp();
            }
            Tensor::from_vec(posterior, &[num_classes]).and_then(|t| t.argmax())
        });
        scored.into_iter().map(|s| Ok(s?)).collect()
    }

    /// [`Localizer::localize_batch`] through the eager (tape) SAE encoder —
    /// the uncompiled reference the parity tests compare against.
    ///
    /// # Errors
    /// Returns [`VitalError::NotFitted`] before [`Localizer::fit`].
    pub fn localize_batch_eager(
        &self,
        observations: &[FingerprintObservation],
    ) -> Result<Vec<usize>> {
        if self.codes.is_empty() {
            return Err(VitalError::NotFitted);
        }
        let ae = self.autoencoder.as_ref().ok_or(VitalError::NotFitted)?;
        let mut predictions = Vec::with_capacity(observations.len());
        for chunk in observations.chunks(crate::features::INFERENCE_CHUNK) {
            let features = self.extractor.extract_clean_batch(chunk);
            let codes = ae.encode_inference(&crate::features::stack_rows(&features)?)?;
            predictions.extend(self.classify_codes(&codes)?);
        }
        Ok(predictions)
    }

    /// Gaussian-kernel posterior argmax for one encoded query.
    fn classify_code(&self, query: &[f32]) -> Result<usize> {
        let gamma = 1.0 / (2.0 * self.length_scale * self.length_scale);
        let mut posterior = vec![0.0f32; self.num_classes];
        for (code, &label) in self.codes.iter().zip(&self.labels) {
            let d2: f32 = code.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
            posterior[label] += (-gamma * d2).exp();
        }
        Ok(Tensor::from_vec(posterior, &[self.num_classes])?.argmax()?)
    }
}

impl Localizer for WiDeepLocalizer {
    fn name(&self) -> &str {
        "WiDeep"
    }

    fn fit(&mut self, train: &FingerprintDataset) -> Result<()> {
        if train.is_empty() {
            return Err(VitalError::InvalidDataset("empty training set".into()));
        }
        self.num_classes = train.num_rps();
        let mut rng = SeededRng::new(self.seed);
        let (features, labels) = self.extractor.extract_matrix(train, true, 1, &mut rng);
        let width = features.cols()?;

        // Denoising SAE pre-training (aggressive corruption, per the paper's
        // description of WiDeep's behaviour).
        let autoencoder = Self::build_autoencoder(self.seed, width);
        autoencoder
            .pretrain(
                &features,
                self.pretrain_epochs,
                5e-3,
                self.corruption_std,
                self.seed,
            )
            .map_err(VitalError::from)?;
        self.autoencoder = Some(autoencoder);

        // Store the codes of the clean fingerprints for kernel inference.
        let mut clean_rng = SeededRng::new(self.seed.wrapping_add(2));
        self.codes = train
            .observations()
            .iter()
            .map(|o| {
                let f = self.extractor.extract(o, false, &mut clean_rng);
                self.encode(&f)
            })
            .collect::<Result<Vec<_>>>()?;
        self.labels = labels
            .into_iter()
            .take(self.codes.len())
            .collect::<Vec<_>>();
        // extract_matrix may have produced augmented copies; keep labels of
        // the clean observations only.
        self.labels = train.labels();
        Ok(())
    }

    fn predict(&self, observation: &FingerprintObservation) -> Result<usize> {
        if self.codes.is_empty() {
            return Err(VitalError::NotFitted);
        }
        let mut rng = SeededRng::new(0);
        let features = self.extractor.extract(observation, false, &mut rng);
        let query = self.encode(&features)?;
        self.classify_code(&query)
    }

    fn localize_batch(&self, observations: &[FingerprintObservation]) -> Result<Vec<usize>> {
        if self.codes.is_empty() {
            return Err(VitalError::NotFitted);
        }
        let mut predictions = Vec::with_capacity(observations.len());
        for chunk in observations.chunks(crate::features::INFERENCE_CHUNK) {
            // Encode the whole chunk through the compiled SAE-encoder plan
            // in one stacked pass, then kernel-score the codes.
            let features = self.extractor.extract_clean_batch(chunk);
            let codes = self.encode_matrix(&crate::features::stack_rows(&features)?)?;
            predictions.extend(self.classify_codes(&codes)?);
        }
        Ok(predictions)
    }

    fn save(&self, path: &Path) -> Result<()> {
        self.to_checkpoint()?.write_to(path)
    }

    fn load(path: &Path) -> Result<Self> {
        WiDeepLocalizer::from_checkpoint(&Checkpoint::read_from(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingerprint::{base_devices, DatasetConfig};
    use sim_radio::building_1;
    use vital::evaluate_localizer;

    #[test]
    fn unfitted_errors_and_name() {
        let wideep = WiDeepLocalizer::new(0);
        assert_eq!(wideep.name(), "WiDeep");
        let building = building_1();
        let ds = FingerprintDataset::collect(
            &building,
            &base_devices()[..1],
            &DatasetConfig {
                captures_per_rp: 1,
                samples_per_capture: 2,
                seed: 0,
            },
        );
        assert!(wideep.predict(&ds.observations()[0]).is_err());
        let mut unfit = WiDeepLocalizer::new(0);
        assert!(unfit.fit(&ds.filter_devices(&["NONE"])).is_err());
    }

    #[test]
    fn trains_and_localizes_better_than_chance() {
        let building = building_1();
        let ds = FingerprintDataset::collect(
            &building,
            &base_devices()[..2],
            &DatasetConfig {
                captures_per_rp: 2,
                samples_per_capture: 3,
                seed: 1,
            },
        );
        let split = ds.split(0.8, 11);
        let mut wideep = WiDeepLocalizer::new(5).with_pretrain_epochs(15);
        wideep.fit(&split.train).unwrap();
        let report = evaluate_localizer(&wideep, &split.test, &building).unwrap();
        assert!(
            report.mean_error_m() < 15.0,
            "WiDeep mean error {} m",
            report.mean_error_m()
        );
    }

    #[test]
    fn dam_variant_trains() {
        let building = building_1();
        let ds = FingerprintDataset::collect(
            &building,
            &base_devices()[..1],
            &DatasetConfig {
                captures_per_rp: 1,
                samples_per_capture: 2,
                seed: 3,
            },
        );
        let mut wideep = WiDeepLocalizer::new(1)
            .with_dam(Some(DamConfig::default()))
            .with_pretrain_epochs(3);
        wideep.fit(&ds).unwrap();
        assert!(wideep.predict(&ds.observations()[0]).unwrap() < ds.num_rps());
    }
}
