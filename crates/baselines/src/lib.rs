//! State-of-the-art heterogeneity-resilient indoor-localization baselines.
//!
//! The VITAL paper compares against four deep-learning frameworks
//! (§II, §VI.C) plus the classical calibration-free approaches mentioned in
//! related work. Each is re-implemented here on the same substrates
//! ([`nn`], [`fingerprint`]) and behind the same [`vital::Localizer`]
//! interface so the benchmark harness can evaluate them identically, with or
//! without the DAM augmentation bolted on (paper §VI.D, Fig. 9):
//!
//! | Framework | Paper ref | Architecture reproduced |
//! |-----------|-----------|--------------------------|
//! | [`AnvilLocalizer`]  | \[19\] | multi-head attention encoder + Euclidean-distance matching over per-RP embedding centroids |
//! | [`SherpaLocalizer`] | \[20\] | DNN classifier whose top-K candidate RPs are refined by weighted KNN |
//! | [`CnnLocLocalizer`] | \[21\] | stacked autoencoder pre-training + 1-D CNN classifier |
//! | [`WiDeepLocalizer`] | \[22\] | denoising stacked autoencoder + Gaussian-kernel (GP-style) classifier |
//! | [`KnnLocalizer`]    | \[18\]/classical | plain, SSD or HLF (hyperbolic) fingerprint KNN |
//!
//! # Example
//!
//! ```no_run
//! use baselines::{KnnLocalizer, FeatureMode};
//! use fingerprint::{base_devices, DatasetConfig, FingerprintDataset};
//! use sim_radio::building_1;
//! use vital::{evaluate_localizer, Localizer};
//!
//! # fn main() -> Result<(), vital::VitalError> {
//! let building = building_1();
//! let data = FingerprintDataset::collect(&building, &base_devices(), &DatasetConfig::default());
//! let split = data.split(0.8, 7);
//! let mut knn = KnnLocalizer::new(5, FeatureMode::Ssd);
//! knn.fit(&split.train)?;
//! let report = evaluate_localizer(&knn, &split.test, &building)?;
//! println!("{}: {:.2} m", knn.name(), report.mean_error_m());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(clippy::disallowed_types)]
#![warn(rust_2018_idioms)]

mod anvil;
mod cnnloc;
mod features;
mod knn;
mod sherpa;
mod wideep;

pub use anvil::AnvilLocalizer;
pub use cnnloc::CnnLocLocalizer;
pub use features::{hlf_transform, normalize_rssi, ssd_transform, FeatureExtractor, FeatureMode};
pub use knn::KnnLocalizer;
pub use sherpa::SherpaLocalizer;
pub use wideep::WiDeepLocalizer;

use vital::Localizer;

/// Builds the full comparison suite of the paper's Fig. 7/8/10 —
/// ANVIL, SHERPA, CNNLoc and WiDeep — each optionally with DAM enabled.
///
/// `seed` controls weight initialisation; `with_dam` bolts the VITAL Data
/// Augmentation Module onto every framework (paper §VI.D).
pub fn comparison_suite(with_dam: bool, seed: u64) -> Vec<Box<dyn Localizer>> {
    let dam = if with_dam {
        Some(vital::DamConfig::default())
    } else {
        None
    };
    vec![
        Box::new(AnvilLocalizer::new(seed).with_dam(dam)),
        Box::new(SherpaLocalizer::new(seed).with_dam(dam)),
        Box::new(CnnLocLocalizer::new(seed).with_dam(dam)),
        Box::new(WiDeepLocalizer::new(seed).with_dam(dam)),
    ]
}

/// Loads *any* saved localizer — VITAL or one of the five baselines — from a
/// checkpoint file, dispatching on the envelope's [`vital::ModelKind`].
///
/// This is the counterpart of [`vital::Localizer::save`] for callers that do
/// not know the concrete model type in advance (e.g. the bench harness's
/// `--checkpoint-dir` path).
///
/// # Errors
/// Returns typed checkpoint errors for missing/corrupt files, format-version
/// mismatches and weight-shape drift.
pub fn load_localizer(path: &std::path::Path) -> vital::Result<Box<dyn Localizer>> {
    let ckpt = vital::Checkpoint::read_from(path)?;
    localizer_from_checkpoint(&ckpt)
}

/// Materializes a localizer of any kind from an already-parsed checkpoint
/// envelope — the in-memory counterpart of [`load_localizer`] for callers
/// that read the file themselves (e.g. the serve crate's model registry,
/// which scans a directory once for both catalog and weights).
///
/// # Errors
/// Typed checkpoint errors for kind mismatches and weight-shape drift.
pub fn localizer_from_checkpoint(ckpt: &vital::Checkpoint) -> vital::Result<Box<dyn Localizer>> {
    Ok(match ckpt.kind() {
        vital::ModelKind::Vital => Box::new(vital::VitalModel::from_checkpoint(ckpt)?),
        vital::ModelKind::Knn => Box::new(KnnLocalizer::from_checkpoint(ckpt)?),
        vital::ModelKind::Sherpa => Box::new(SherpaLocalizer::from_checkpoint(ckpt)?),
        vital::ModelKind::CnnLoc => Box::new(CnnLocLocalizer::from_checkpoint(ckpt)?),
        vital::ModelKind::WiDeep => Box::new(WiDeepLocalizer::from_checkpoint(ckpt)?),
        vital::ModelKind::Anvil => Box::new(AnvilLocalizer::from_checkpoint(ckpt)?),
    })
}

/// Compile-time proof that every localizer is thread-safe ([`Localizer`]'s
/// `Send + Sync` supertrait guarantees it for trait objects; these
/// instantiations pin the concrete types too, including [`vital::VitalModel`],
/// so a regression names the offending model in the build error).
#[allow(dead_code)]
fn _assert_localizers_are_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<vital::VitalModel>();
    assert::<AnvilLocalizer>();
    assert::<SherpaLocalizer>();
    assert::<CnnLocLocalizer>();
    assert::<WiDeepLocalizer>();
    assert::<KnnLocalizer>();
    assert::<Box<dyn Localizer>>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_suite_contains_the_four_frameworks() {
        let suite = comparison_suite(false, 0);
        let names: Vec<&str> = suite.iter().map(|l| l.name()).collect();
        assert_eq!(names, vec!["ANVIL", "SHERPA", "CNNLoc", "WiDeep"]);
        let with_dam = comparison_suite(true, 0);
        assert_eq!(with_dam.len(), 4);
    }
}
