//! Save → load round-trips for every localizer family: a reloaded model
//! must reproduce the original's predictions *exactly*, and the
//! kind-dispatching loader must restore the right concrete type.

use std::path::PathBuf;

use baselines::{
    load_localizer, AnvilLocalizer, CnnLocLocalizer, FeatureMode, KnnLocalizer, SherpaLocalizer,
    WiDeepLocalizer,
};
use fingerprint::{base_devices, DatasetConfig, FingerprintDataset};
use sim_radio::building_1;
use vital::{CheckpointError, Localizer, VitalConfig, VitalError, VitalModel};

fn tiny_dataset() -> FingerprintDataset {
    let building = building_1();
    let dataset = FingerprintDataset::collect(
        &building,
        &base_devices()[..2],
        &DatasetConfig {
            captures_per_rp: 1,
            samples_per_capture: 2,
            seed: 21,
        },
    );
    // Restrict to the first 10 RPs so the neural baselines train in
    // milliseconds.
    let subset: Vec<_> = dataset
        .observations()
        .iter()
        .filter(|o| o.rp_label < 10)
        .cloned()
        .collect();
    FingerprintDataset::from_observations(dataset.building(), dataset.num_aps(), 10, subset)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir()
        .join("vital-baseline-roundtrip")
        .join(name)
}

/// Trains, saves, reloads both through `L::load` and the kind dispatcher,
/// and asserts exact prediction equality on every observation.
fn assert_round_trip<L: Localizer>(
    mut localizer: L,
    file: &str,
    reload: fn(&std::path::Path) -> vital::Result<L>,
) {
    let dataset = tiny_dataset();
    localizer.fit(&dataset).unwrap();
    let expected = localizer.localize_batch(dataset.observations()).unwrap();

    let path = temp_path(file);
    localizer.save(&path).unwrap();

    let restored = reload(&path).unwrap();
    assert_eq!(restored.name(), localizer.name());
    assert_eq!(
        restored.localize_batch(dataset.observations()).unwrap(),
        expected,
        "{}: concrete reload diverged",
        localizer.name()
    );

    let dynamic = load_localizer(&path).unwrap();
    assert_eq!(dynamic.name(), localizer.name());
    assert_eq!(
        dynamic.localize_batch(dataset.observations()).unwrap(),
        expected,
        "{}: dispatched reload diverged",
        localizer.name()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn vital_round_trips_exactly() {
    let dataset = tiny_dataset();
    let mut config = VitalConfig::fast(building_1().access_points().len(), 10);
    config.image_size = 16;
    config.patch_size = 4;
    config.d_model = 24;
    config.msa_heads = 4;
    config.train.epochs = 2;
    let model = VitalModel::new(config).unwrap();
    let _ = dataset;
    assert_round_trip(model, "vital.vckpt", VitalModel::load);
}

#[test]
fn knn_round_trips_exactly() {
    assert_round_trip(
        KnnLocalizer::new(3, FeatureMode::Ssd),
        "knn.vckpt",
        KnnLocalizer::load,
    );
}

#[test]
fn sherpa_round_trips_exactly() {
    assert_round_trip(
        SherpaLocalizer::new(5).with_epochs(2),
        "sherpa.vckpt",
        SherpaLocalizer::load,
    );
}

#[test]
fn cnnloc_round_trips_exactly() {
    assert_round_trip(
        CnnLocLocalizer::new(6)
            .with_epochs(2)
            .with_pretrain_epochs(2),
        "cnnloc.vckpt",
        CnnLocLocalizer::load,
    );
}

#[test]
fn wideep_round_trips_exactly() {
    assert_round_trip(
        WiDeepLocalizer::new(7).with_pretrain_epochs(2),
        "wideep.vckpt",
        WiDeepLocalizer::load,
    );
}

#[test]
fn anvil_round_trips_exactly() {
    assert_round_trip(
        AnvilLocalizer::new(8).with_epochs(2),
        "anvil.vckpt",
        AnvilLocalizer::load,
    );
}

#[test]
fn dam_enabled_baseline_round_trips_with_its_pipeline() {
    let dataset = tiny_dataset();
    let mut sherpa = SherpaLocalizer::new(9)
        .with_dam(Some(vital::DamConfig::default()))
        .with_epochs(2);
    sherpa.fit(&dataset).unwrap();
    let expected = sherpa.localize_batch(dataset.observations()).unwrap();

    let path = temp_path("sherpa-dam.vckpt");
    sherpa.save(&path).unwrap();
    let restored = SherpaLocalizer::load(&path).unwrap();
    assert_eq!(
        restored.localize_batch(dataset.observations()).unwrap(),
        expected
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn unfitted_models_refuse_to_save() {
    let path = temp_path("never-written.vckpt");
    for result in [
        KnnLocalizer::new(3, FeatureMode::MeanChannel).save(&path),
        SherpaLocalizer::new(0).save(&path),
        CnnLocLocalizer::new(0).save(&path),
        WiDeepLocalizer::new(0).save(&path),
        AnvilLocalizer::new(0).save(&path),
    ] {
        assert!(matches!(result, Err(VitalError::NotFitted)));
    }
    assert!(!path.exists());
}

#[test]
fn cross_kind_loads_are_typed_errors() {
    let dataset = tiny_dataset();
    let mut knn = KnnLocalizer::new(3, FeatureMode::MeanChannel);
    knn.fit(&dataset).unwrap();
    let path = temp_path("kind-mismatch.vckpt");
    knn.save(&path).unwrap();

    assert!(matches!(
        SherpaLocalizer::load(&path),
        Err(VitalError::Checkpoint(CheckpointError::WrongKind { .. }))
    ));
    assert!(matches!(
        VitalModel::load(&path),
        Err(VitalError::Checkpoint(CheckpointError::WrongKind { .. }))
    ));
    // The kind dispatcher still restores it as the right type.
    assert_eq!(load_localizer(&path).unwrap().name(), "KNN");
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_files_are_typed_errors() {
    let path = temp_path("garbage.vckpt");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, b"definitely not a checkpoint").unwrap();
    assert!(matches!(
        load_localizer(&path),
        Err(VitalError::Checkpoint(CheckpointError::BadMagic))
    ));
    assert!(matches!(
        load_localizer(&temp_path("missing.vckpt")),
        Err(VitalError::Checkpoint(CheckpointError::Io(_)))
    ));
    std::fs::remove_file(&path).ok();
}
