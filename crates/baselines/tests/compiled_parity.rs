//! Compiled-plan ↔ eager-path parity for every localizer family.
//!
//! Each neural localizer serves inference from a build-once/execute-many
//! compiled plan (`crates/graph`) keyed by batch shape; the tape-based
//! eager path is kept as the bit-exactness reference. These tests assert
//! the two paths agree *exactly* — across batch sizes {1, 2, 32} and
//! worker-thread counts {1, 4} — and that plan caching behaves (one plan
//! per batch shape, reused on re-execution).
//!
//! KNN is the one localizer without a neural stage, so it has no compiled
//! plan; its parity property is batch-vs-single-query consistency under
//! the same thread counts.

use baselines::{
    AnvilLocalizer, CnnLocLocalizer, FeatureMode, KnnLocalizer, SherpaLocalizer, WiDeepLocalizer,
};
use fingerprint::{base_devices, DatasetConfig, FingerprintDataset, FingerprintObservation};
use sim_radio::building_1;
use tensor::rng::SeededRng;
use tensor::Tensor;
use vital::{Localizer, VitalConfig, VitalModel};

const BATCH_SIZES: [usize; 3] = [1, 2, 32];
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn tiny_dataset() -> FingerprintDataset {
    let building = building_1();
    let dataset = FingerprintDataset::collect(
        &building,
        &base_devices()[..2],
        &DatasetConfig {
            captures_per_rp: 1,
            samples_per_capture: 2,
            seed: 33,
        },
    );
    // Restrict to the first 10 RPs so the neural baselines train in
    // milliseconds.
    let subset: Vec<_> = dataset
        .observations()
        .iter()
        .filter(|o| o.rp_label < 10)
        .cloned()
        .collect();
    FingerprintDataset::from_observations(dataset.building(), dataset.num_aps(), 10, subset)
}

/// Cycles the dataset's observations into a query batch of exactly `n`.
fn queries(dataset: &FingerprintDataset, n: usize) -> Vec<FingerprintObservation> {
    dataset
        .observations()
        .iter()
        .cycle()
        .take(n)
        .cloned()
        .collect()
}

/// Asserts compiled `localize_batch` output equals the eager reference for
/// every batch size and thread count, then that re-serving the same shapes
/// hits the cached plans instead of compiling new ones.
fn assert_compiled_parity<L: Localizer>(
    localizer: &L,
    dataset: &FingerprintDataset,
    eager: impl Fn(&L, &[FingerprintObservation]) -> vital::Result<Vec<usize>>,
    cached_plans: impl Fn(&L) -> usize,
) {
    for threads in THREAD_COUNTS {
        parallel::with_threads(threads, || {
            for batch in BATCH_SIZES {
                let observations = queries(dataset, batch);
                let compiled = localizer.localize_batch(&observations).unwrap();
                let reference = eager(localizer, &observations).unwrap();
                assert_eq!(
                    compiled,
                    reference,
                    "{}: compiled diverged from eager at batch {batch} / {threads} threads",
                    localizer.name()
                );
            }
        });
    }
    let plans = cached_plans(localizer);
    assert!(
        plans <= BATCH_SIZES.len(),
        "{}: one plan per batch shape expected, found {plans}",
        localizer.name()
    );
    // Re-serving the same shapes must reuse every cached plan.
    for batch in BATCH_SIZES {
        let observations = queries(dataset, batch);
        localizer.localize_batch(&observations).unwrap();
    }
    assert_eq!(
        cached_plans(localizer),
        plans,
        "{}: re-serving a known shape must not compile a new plan",
        localizer.name()
    );
}

#[test]
fn sherpa_compiled_matches_eager() {
    let dataset = tiny_dataset();
    let mut sherpa = SherpaLocalizer::new(11).with_epochs(2);
    sherpa.fit(&dataset).unwrap();
    assert_compiled_parity(
        &sherpa,
        &dataset,
        |l, obs| l.localize_batch_eager(obs),
        SherpaLocalizer::cached_plans,
    );
}

#[test]
fn wideep_compiled_matches_eager() {
    let dataset = tiny_dataset();
    let mut wideep = WiDeepLocalizer::new(12).with_pretrain_epochs(2);
    wideep.fit(&dataset).unwrap();
    assert_compiled_parity(
        &wideep,
        &dataset,
        |l, obs| l.localize_batch_eager(obs),
        WiDeepLocalizer::cached_plans,
    );
}

#[test]
fn cnnloc_compiled_matches_eager() {
    let dataset = tiny_dataset();
    let mut cnnloc = CnnLocLocalizer::new(13)
        .with_epochs(2)
        .with_pretrain_epochs(2);
    cnnloc.fit(&dataset).unwrap();
    assert_compiled_parity(
        &cnnloc,
        &dataset,
        |l, obs| l.localize_batch_eager(obs),
        CnnLocLocalizer::cached_plans,
    );
}

#[test]
fn anvil_compiled_matches_eager() {
    let dataset = tiny_dataset();
    let mut anvil = AnvilLocalizer::new(14).with_epochs(2);
    anvil.fit(&dataset).unwrap();
    assert_compiled_parity(
        &anvil,
        &dataset,
        |l, obs| l.localize_batch_eager(obs),
        AnvilLocalizer::cached_plans,
    );
}

#[test]
fn vital_compiled_matches_eager() {
    let dataset = tiny_dataset();
    let mut config = VitalConfig::fast(building_1().access_points().len(), 10);
    config.image_size = 16;
    config.patch_size = 4;
    config.d_model = 24;
    config.msa_heads = 4;
    config.train.epochs = 2;
    let mut model = VitalModel::new(config).unwrap();
    model.fit(&dataset).unwrap();

    for threads in THREAD_COUNTS {
        parallel::with_threads(threads, || {
            for batch_size in BATCH_SIZES {
                let observations = queries(&dataset, batch_size);
                let batch: Vec<Tensor> = observations
                    .iter()
                    .map(|o| {
                        let mut rng = SeededRng::new(0);
                        model.prepare_patches(o, false, &mut rng).unwrap()
                    })
                    .collect();
                let compiled = model.transformer().predict_batch(&batch).unwrap();
                let eager = model.transformer().predict_batch_eager(&batch).unwrap();
                assert_eq!(
                    compiled, eager,
                    "VITAL: compiled diverged at batch {batch_size} / {threads} threads"
                );
            }
        });
    }
}

#[test]
fn knn_batch_matches_single_query_across_threads() {
    // KNN has no neural stage, hence no compiled plan: its parity property
    // is that the (parallel) batch path agrees with per-query prediction.
    let dataset = tiny_dataset();
    let mut knn = KnnLocalizer::new(3, FeatureMode::Ssd);
    knn.fit(&dataset).unwrap();
    for threads in THREAD_COUNTS {
        parallel::with_threads(threads, || {
            for batch in BATCH_SIZES {
                let observations = queries(&dataset, batch);
                let batched = knn.localize_batch(&observations).unwrap();
                let single: Vec<usize> = observations
                    .iter()
                    .map(|o| knn.predict(o).unwrap())
                    .collect();
                assert_eq!(
                    batched, single,
                    "KNN batch diverged from single-query at batch {batch} / {threads} threads"
                );
            }
        });
    }
}
