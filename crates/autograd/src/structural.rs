//! Shape-manipulating primitives: reshape, transpose, slicing, concatenation
//! and pooling. These are the glue of the patch-embedding and multi-head
//! attention pipelines.

use tensor::Tensor;

use crate::{Result, Var};

impl<'t> Var<'t> {
    /// Reinterprets the value with a new shape of equal volume.
    ///
    /// # Errors
    /// Returns an error if the volumes differ.
    pub fn reshape(self, dims: &[usize]) -> Result<Var<'t>> {
        let original: Vec<usize> = self.value().shape().dims().to_vec();
        let value = self.value().reshape(dims)?;
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                vec![g.reshape(&original).expect("volume preserved")]
            })),
        ))
    }

    /// Matrix transpose.
    ///
    /// # Errors
    /// Returns an error for non-matrix values.
    pub fn transpose(self) -> Result<Var<'t>> {
        let value = self.value().transpose()?;
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                vec![g.transpose().expect("matrix gradient")]
            })),
        ))
    }

    /// Copies rows `[start, end)` of a matrix.
    ///
    /// # Errors
    /// Returns an error if the range is out of bounds.
    pub fn slice_rows(self, start: usize, end: usize) -> Result<Var<'t>> {
        let x = self.value();
        let (rows, cols) = x.shape().as_matrix()?;
        let value = x.slice_rows(start, end)?;
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let mut full = Tensor::zeros(&[rows, cols]);
                full.as_mut_slice()[start * cols..end * cols].copy_from_slice(g.as_slice());
                vec![full]
            })),
        ))
    }

    /// Copies columns `[start, end)` of a matrix.
    ///
    /// # Errors
    /// Returns an error if the range is out of bounds.
    pub fn slice_cols(self, start: usize, end: usize) -> Result<Var<'t>> {
        let x = self.value();
        let (rows, cols) = x.shape().as_matrix()?;
        let value = x.slice_cols(start, end)?;
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let mut full = Tensor::zeros(&[rows, cols]);
                let w = end - start;
                for r in 0..rows {
                    full.as_mut_slice()[r * cols + start..r * cols + end]
                        .copy_from_slice(&g.as_slice()[r * w..(r + 1) * w]);
                }
                vec![full]
            })),
        ))
    }

    /// Mean over the rows of a matrix, producing a `1 × cols` matrix.
    ///
    /// Used to pool the transformer encoder's patch outputs before the
    /// fine-tuning MLP head.
    ///
    /// # Errors
    /// Returns an error for non-matrix values or zero-row matrices.
    pub fn mean_pool_rows(self) -> Result<Var<'t>> {
        let x = self.value();
        let (rows, cols) = x.shape().as_matrix()?;
        if rows == 0 {
            return Err(tensor::TensorError::Empty {
                op: "mean_pool_rows",
            });
        }
        let value = x.mean_rows()?.reshape(&[1, cols])?;
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let scale = 1.0 / rows as f32;
                let row = g.scale(scale);
                let mut full = Vec::with_capacity(rows * cols);
                for _ in 0..rows {
                    full.extend_from_slice(row.as_slice());
                }
                vec![Tensor::from_vec(full, &[rows, cols]).expect("tile volume")]
            })),
        ))
    }

    /// Adds `tile` (a `[block_rows, cols]` matrix) to every consecutive
    /// `block_rows`-row block of `self` (a `[reps * block_rows, cols]`
    /// matrix).
    ///
    /// This is the batched form of a per-sample addition: stacking `reps`
    /// samples row-wise and tiling the shared operand (e.g. a positional
    /// embedding) over the stack. Gradients: `dX = g`,
    /// `dtile = Σ_blocks g` (the block sum over the batch).
    ///
    /// # Errors
    /// Returns an error if the shapes are incompatible.
    pub fn add_tile_rows(self, tile: Var<'t>, reps: usize) -> Result<Var<'t>> {
        let t = tile.value();
        let block_rows = t.rows()?;
        let tiled = if reps == 1 { t } else { t.repeat_rows(reps)? };
        let value = self.value().add(&tiled)?;
        Ok(self.tape.push(
            value,
            vec![self.id, tile.id],
            Some(Box::new(move |g: &Tensor| {
                let dtile = g
                    .sum_row_blocks(block_rows)
                    .expect("shapes fixed at record time");
                vec![g.clone(), dtile]
            })),
        ))
    }

    /// Mean-pools every consecutive `block_rows`-row block of a
    /// `[blocks * block_rows, cols]` matrix down to one row, producing a
    /// `[blocks, cols]` matrix.
    ///
    /// With one block per sample this is the batched counterpart of
    /// [`Var::mean_pool_rows`]: it collapses a whole stacked batch of patch
    /// sequences to per-sample pooled features in one op.
    ///
    /// # Errors
    /// Returns an error if the row count is not a multiple of `block_rows`.
    pub fn mean_pool_row_blocks(self, block_rows: usize) -> Result<Var<'t>> {
        let x = self.value();
        let value = x.mean_row_blocks(block_rows)?;
        let (rows, cols) = x.shape().as_matrix()?;
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                // Each input row receives its block's pooled gradient / P.
                let scale = 1.0 / block_rows as f32;
                let mut full = Vec::with_capacity(rows * cols);
                for block_grad in g.as_slice().chunks_exact(cols) {
                    for _ in 0..block_rows {
                        full.extend(block_grad.iter().map(|v| v * scale));
                    }
                }
                vec![Tensor::from_vec(full, &[rows, cols]).expect("tile volume")]
            })),
        ))
    }

    /// Vertically concatenates matrices with equal column counts.
    ///
    /// # Errors
    /// Returns an error if `parts` is empty, the parts belong to different
    /// tapes, or column counts differ.
    pub fn concat_rows(parts: &[Var<'t>]) -> Result<Var<'t>> {
        let first = parts
            .first()
            .ok_or(tensor::TensorError::Empty { op: "concat_rows" })?;
        let tape = first.tape;
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let value = Tensor::concat_rows(&refs)?;
        let row_counts: Vec<usize> = values
            .iter()
            .map(|v| v.rows().expect("concat operand is a matrix"))
            .collect();
        let parents: Vec<usize> = parts.iter().map(|p| p.id).collect();
        Ok(tape.push(
            value,
            parents,
            Some(Box::new(move |g: &Tensor| {
                let mut grads = Vec::with_capacity(row_counts.len());
                let mut offset = 0;
                for rc in &row_counts {
                    grads.push(
                        g.slice_rows(offset, offset + rc)
                            .expect("gradient covers all rows"),
                    );
                    offset += rc;
                }
                grads
            })),
        ))
    }

    /// Horizontally concatenates matrices with equal row counts (multi-head
    /// attention output concatenation).
    ///
    /// # Errors
    /// Returns an error if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[Var<'t>]) -> Result<Var<'t>> {
        let first = parts
            .first()
            .ok_or(tensor::TensorError::Empty { op: "concat_cols" })?;
        let tape = first.tape;
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let value = Tensor::concat_cols(&refs)?;
        let col_counts: Vec<usize> = values
            .iter()
            .map(|v| v.cols().expect("concat operand is a matrix"))
            .collect();
        let parents: Vec<usize> = parts.iter().map(|p| p.id).collect();
        Ok(tape.push(
            value,
            parents,
            Some(Box::new(move |g: &Tensor| {
                let mut grads = Vec::with_capacity(col_counts.len());
                let mut offset = 0;
                for cc in &col_counts {
                    grads.push(
                        g.slice_cols(offset, offset + cc)
                            .expect("gradient covers all cols"),
                    );
                    offset += cc;
                }
                grads
            })),
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::{Tape, Var};
    use tensor::Tensor;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn reshape_round_trips_gradient() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let loss = x.reshape(&[4]).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(x).unwrap().shape().dims(), &[2, 2]);
    }

    #[test]
    fn transpose_gradient_is_transposed() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
        let mask = t(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0], &[3, 2]);
        let loss = x
            .transpose()
            .unwrap()
            .mul_mask(&mask)
            .unwrap()
            .sum_all()
            .unwrap();
        tape.backward(loss).unwrap();
        // Only x[0][0] influences the loss.
        let g = tape.grad(x).unwrap();
        assert_eq!(g.at(0, 0).unwrap(), 1.0);
        assert_eq!(g.sum(), 1.0);
    }

    #[test]
    fn slice_rows_gradient_zero_pads() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]));
        let loss = x.slice_rows(1, 2).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(
            tape.grad(x).unwrap().as_slice(),
            &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn slice_cols_gradient_zero_pads() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
        let loss = x.slice_cols(0, 1).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(
            tape.grad(x).unwrap().as_slice(),
            &[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]
        );
    }

    #[test]
    fn mean_pool_rows_spreads_gradient() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let pooled = x.mean_pool_rows().unwrap();
        assert_eq!(pooled.value().shape().dims(), &[1, 2]);
        assert_eq!(pooled.value().as_slice(), &[2.0, 3.0]);
        let loss = pooled.sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[0.5; 4]);
    }

    #[test]
    fn concat_rows_splits_gradient() {
        let tape = Tape::new();
        let a = tape.var(t(&[1.0, 2.0], &[1, 2]));
        let b = tape.var(t(&[3.0, 4.0], &[1, 2]));
        let cat = Var::concat_rows(&[a, b]).unwrap();
        assert_eq!(cat.value().shape().dims(), &[2, 2]);
        let mask = t(&[1.0, 1.0, 2.0, 2.0], &[2, 2]);
        let loss = cat.mul_mask(&mask).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let tape = Tape::new();
        let a = tape.var(t(&[1.0, 2.0], &[2, 1]));
        let b = tape.var(t(&[3.0, 4.0], &[2, 1]));
        let cat = Var::concat_cols(&[a, b]).unwrap();
        assert_eq!(cat.value().shape().dims(), &[2, 2]);
        let mask = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let loss = cat.mul_mask(&mask).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn add_tile_rows_matches_per_block_add_and_sums_gradient() {
        let tape = Tape::new();
        // Two stacked "samples" of 2×2 each.
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[4, 2]));
        let pos = tape.var(t(&[10.0, 20.0, 30.0, 40.0], &[2, 2]));
        let y = x.add_tile_rows(pos, 2).unwrap();
        assert_eq!(
            y.value().as_slice(),
            &[11.0, 22.0, 33.0, 44.0, 15.0, 26.0, 37.0, 48.0]
        );
        let mask = t(&[1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[4, 2]);
        let loss = y.mul_mask(&mask).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(x).unwrap(), mask);
        // dtile sums the two blocks of the mask.
        assert_eq!(tape.grad(pos).unwrap().as_slice(), &[3.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn add_tile_rows_with_one_rep_is_plain_add() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0], &[1, 2]));
        let b = tape.var(t(&[3.0, 4.0], &[1, 2]));
        let y = x.add_tile_rows(b, 1).unwrap();
        assert_eq!(y.value().as_slice(), &[4.0, 6.0]);
        let loss = y.sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn mean_pool_row_blocks_pools_per_block() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[4, 2]));
        let pooled = x.mean_pool_row_blocks(2).unwrap();
        assert_eq!(pooled.value().shape().dims(), &[2, 2]);
        assert_eq!(pooled.value().as_slice(), &[2.0, 3.0, 20.0, 30.0]);
        let mask = t(&[1.0, 1.0, 3.0, 3.0], &[2, 2]);
        let loss = pooled.mul_mask(&mask).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(
            tape.grad(x).unwrap().as_slice(),
            &[0.5, 0.5, 0.5, 0.5, 1.5, 1.5, 1.5, 1.5]
        );
    }

    #[test]
    fn mean_pool_row_blocks_of_whole_matrix_matches_mean_pool_rows() {
        let tape = Tape::new();
        let data = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let a = tape.var(data.clone());
        let b = tape.var(data);
        let via_blocks = a.mean_pool_row_blocks(3).unwrap();
        let via_rows = b.mean_pool_rows().unwrap();
        assert_eq!(via_blocks.value(), via_rows.value());
    }

    #[test]
    fn empty_concat_errors() {
        let parts: Vec<Var<'_>> = Vec::new();
        assert!(Var::concat_rows(&parts).is_err());
        assert!(Var::concat_cols(&parts).is_err());
    }
}
