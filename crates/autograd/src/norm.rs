//! Layer normalisation with learnable scale and shift.

use tensor::Tensor;

use crate::{Result, Var};

impl<'t> Var<'t> {
    /// Layer normalisation over the last axis of a matrix, with learnable
    /// per-feature `gamma` (scale) and `beta` (shift).
    ///
    /// For each row `x` of the input: `y = γ ⊙ (x − μ)/√(σ² + ε) + β`.
    /// This matches the normalisation applied before every MSA and MLP
    /// sub-block of the VITAL transformer encoder.
    ///
    /// # Errors
    /// Returns an error if `self` is not a matrix or if `gamma` / `beta`
    /// lengths do not match the feature dimension.
    pub fn layer_norm(self, gamma: Var<'t>, beta: Var<'t>, eps: f32) -> Result<Var<'t>> {
        let x = self.value();
        let g = gamma.value();
        let b = beta.value();
        let (rows, cols) = x.shape().as_matrix()?;
        if g.len() != cols || b.len() != cols {
            return Err(tensor::TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: x.shape().dims().to_vec(),
                rhs: g.shape().dims().to_vec(),
            });
        }

        // Forward on the runtime-dispatched SIMD kernel; keep the input and
        // the per-row (mean, 1/std) the kernel computed so the backward
        // closure can reconstruct x̂ without a second [rows × cols] buffer.
        let (value, means, inv_std) = x.layer_norm_rows_stats(&g, &b, eps)?;

        let x_for_back = x.clone();
        let gamma_for_back = g.clone();
        Ok(self.tape.push(
            value,
            vec![self.id, gamma.id, beta.id],
            Some(Box::new(move |grad: &Tensor| {
                let gs = grad.as_slice();
                let xs = x_for_back.as_slice();
                let gm = gamma_for_back.as_slice();
                let mut dx = vec![0.0f32; rows * cols];
                let mut dgamma = vec![0.0f32; cols];
                let mut dbeta = vec![0.0f32; cols];
                for (i, (&inv_std_i, &mean_i)) in inv_std.iter().zip(&means).enumerate() {
                    // dxhat = grad ⊙ gamma, with x̂ = (x − μ)·istd rebuilt
                    // from the saved statistics.
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for (j, &gm_j) in gm.iter().enumerate() {
                        let idx = i * cols + j;
                        let xh = (xs[idx] - mean_i) * inv_std_i;
                        let dxhat = gs[idx] * gm_j;
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xh;
                        dgamma[j] += gs[idx] * xh;
                        dbeta[j] += gs[idx];
                    }
                    let n = cols as f32;
                    for (j, &gm_j) in gm.iter().enumerate() {
                        let idx = i * cols + j;
                        let xh = (xs[idx] - mean_i) * inv_std_i;
                        let dxhat = gs[idx] * gm_j;
                        dx[idx] = inv_std_i * (dxhat - sum_dxhat / n - xh * sum_dxhat_xhat / n);
                    }
                }
                vec![
                    Tensor::from_vec(dx, &[rows, cols]).expect("shape preserved"),
                    Tensor::from_vec(dgamma, &[cols]).expect("shape preserved"),
                    Tensor::from_vec(dbeta, &[cols]).expect("shape preserved"),
                ]
            })),
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::Tape;
    use tensor::Tensor;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    fn layer_norm_ref(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let (rows, cols) = x.shape().as_matrix().unwrap();
        let mut out = vec![0.0; rows * cols];
        for i in 0..rows {
            let row = &x.as_slice()[i * cols..(i + 1) * cols];
            let mean: f32 = row.iter().sum::<f32>() / cols as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            for j in 0..cols {
                out[i * cols + j] =
                    gamma.as_slice()[j] * (row[j] - mean) / (var + eps).sqrt() + beta.as_slice()[j];
            }
        }
        Tensor::from_vec(out, &[rows, cols]).unwrap()
    }

    #[test]
    fn forward_matches_reference() {
        let x = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 5.0], &[2, 3]);
        let gamma = t(&[1.0, 2.0, 0.5], &[3]);
        let beta = t(&[0.0, -1.0, 1.0], &[3]);
        let tape = Tape::new();
        let xv = tape.var(x.clone());
        let g = tape.var(gamma.clone());
        let b = tape.var(beta.clone());
        let y = xv.layer_norm(g, b, 1e-5).unwrap().value();
        let reference = layer_norm_ref(&x, &gamma, &beta, 1e-5);
        for (a, r) in y.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - r).abs() < 1e-5);
        }
    }

    #[test]
    fn normalized_rows_have_zero_mean_unit_variance_when_identity_affine() {
        let x = t(&[10.0, 20.0, 30.0, 40.0], &[1, 4]);
        let tape = Tape::new();
        let xv = tape.var(x);
        let g = tape.var(Tensor::ones(&[4]));
        let b = tape.var(Tensor::zeros(&[4]));
        let y = xv.layer_norm(g, b, 1e-6).unwrap().value();
        assert!(y.mean().abs() < 1e-5);
        assert!((y.variance() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let x = t(&[0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]);
        let gamma = t(&[1.2, 0.8, 1.0], &[3]);
        let beta = t(&[0.1, -0.2, 0.0], &[3]);
        let weights = t(&[1.0, -2.0, 0.5, 3.0, 1.0, -1.0], &[2, 3]);
        let eps = 1e-5;

        let tape = Tape::new();
        let xv = tape.var(x.clone());
        let gv = tape.var(gamma.clone());
        let bv = tape.var(beta.clone());
        let loss = xv
            .layer_norm(gv, bv, eps)
            .unwrap()
            .mul_mask(&weights)
            .unwrap()
            .sum_all()
            .unwrap();
        tape.backward(loss).unwrap();

        let f = |x_: &Tensor, g_: &Tensor, b_: &Tensor| {
            layer_norm_ref(x_, g_, b_, eps).mul(&weights).unwrap().sum()
        };
        let fd = 1e-3f32;
        // Check dX.
        let dx = tape.grad(xv).unwrap();
        for i in 0..x.len() {
            let mut plus = x.clone();
            plus.as_mut_slice()[i] += fd;
            let mut minus = x.clone();
            minus.as_mut_slice()[i] -= fd;
            let num = (f(&plus, &gamma, &beta) - f(&minus, &gamma, &beta)) / (2.0 * fd);
            assert!(
                (dx.as_slice()[i] - num).abs() < 2e-2,
                "dx[{i}] {} vs {num}",
                dx.as_slice()[i]
            );
        }
        // Check dGamma and dBeta.
        let dg = tape.grad(gv).unwrap();
        let db = tape.grad(bv).unwrap();
        for i in 0..gamma.len() {
            let mut plus = gamma.clone();
            plus.as_mut_slice()[i] += fd;
            let mut minus = gamma.clone();
            minus.as_mut_slice()[i] -= fd;
            let num = (f(&x, &plus, &beta) - f(&x, &minus, &beta)) / (2.0 * fd);
            assert!((dg.as_slice()[i] - num).abs() < 2e-2);

            let mut bplus = beta.clone();
            bplus.as_mut_slice()[i] += fd;
            let mut bminus = beta.clone();
            bminus.as_mut_slice()[i] -= fd;
            let numb = (f(&x, &gamma, &bplus) - f(&x, &gamma, &bminus)) / (2.0 * fd);
            assert!((db.as_slice()[i] - numb).abs() < 2e-2);
        }
    }

    #[test]
    fn shape_validation() {
        let tape = Tape::new();
        let x = tape.var(Tensor::zeros(&[2, 3]));
        let g = tape.var(Tensor::ones(&[4]));
        let b = tape.var(Tensor::zeros(&[3]));
        assert!(x.layer_norm(g, b, 1e-5).is_err());
    }
}
