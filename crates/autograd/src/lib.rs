//! Reverse-mode automatic differentiation over dense [`tensor::Tensor`]s.
//!
//! The crate implements a classic *tape* (Wengert list) design: a [`Tape`]
//! records every primitive operation performed on [`Var`] handles during a
//! forward pass, and [`Tape::backward`] walks the recorded list in reverse to
//! accumulate gradients with respect to every recorded variable.
//!
//! The set of primitives is deliberately the exact set needed by the VITAL
//! vision transformer and the comparison baselines: dense affine maps,
//! multi-head self-attention building blocks (matmul / transpose / softmax /
//! concatenation), layer normalisation, GELU/ReLU/tanh/sigmoid activations,
//! dropout via constant masks, and classification / regression losses.
//!
//! # Example
//!
//! ```
//! use autograd::Tape;
//! use tensor::Tensor;
//!
//! # fn main() -> Result<(), tensor::TensorError> {
//! let tape = Tape::new();
//! let x = tape.var(Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?);
//! let w = tape.var(Tensor::from_vec(vec![3.0, 4.0], &[2, 1])?);
//! let y = x.matmul(w)?;          // y = 1*3 + 2*4 = 11
//! let loss = y.sum_all()?;
//! tape.backward(loss)?;
//! assert_eq!(tape.grad(w)?.as_slice(), &[1.0, 2.0]); // dy/dw = x
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod activation;
mod loss;
mod norm;
mod ops;
mod structural;
mod tape;

pub use tape::{Tape, Var};

/// Convenience alias for results returned by autograd operations.
pub type Result<T> = std::result::Result<T, tensor::TensorError>;
