// Justified exception to the workspace RefCell ban, for this module only:
// the tape is a per-pass, per-thread recorder by design (see the threading
// note on [`Tape`]); making it Sync would add lock traffic to every
// recorded op for no sharing benefit. vital-lint pins the ban itself in
// ci/lint-rules.toml.
#![allow(clippy::disallowed_types)]

use std::cell::RefCell;
use std::fmt;

use tensor::{Tensor, TensorError};

use crate::Result;

/// Gradient function: maps the gradient flowing into a node to the gradients
/// of that node's parents (same order as `parents`).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) parents: Vec<usize>,
    pub(crate) backward: Option<BackwardFn>,
}

/// A Wengert list recording a single forward computation.
///
/// Create variables with [`Tape::var`] (tracked) or [`Tape::constant`]
/// (recorded but typically used for data / masks whose gradient is ignored),
/// combine them through [`Var`] methods, then call [`Tape::backward`] on a
/// scalar result. Gradients are retrieved with [`Tape::grad`].
///
/// A `Tape` is intended to live for exactly one forward/backward pass; build
/// a fresh tape every training step.
///
/// # Ownership and threading
///
/// A tape is deliberately a **single-threaded, per-pass** object
/// (`RefCell` inside, not `Sync`): every inference or training pass builds
/// its own tape on its own thread and drops it afterwards, so tapes never
/// cross threads and need no locks. Thread-safety lives one level down —
/// the [`Tensor`] values recorded on the tape are `Arc`-backed, so pushing
/// a model weight onto a tape is an `O(1)` snapshot *sharing* storage with
/// the parameter (and with every other thread's tape), not a copy. That
/// split — shareable immutable values, thread-local recording state — is
/// what lets N serve workers run forward passes concurrently against one
/// set of weights.
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
    grads: RefCell<Vec<Option<Tensor>>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::new()),
            grads: RefCell::new(Vec::new()),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Returns `true` when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a tracked variable holding `value` and returns its handle.
    pub fn var(&self, value: Tensor) -> Var<'_> {
        self.push(value, Vec::new(), None)
    }

    /// Records a constant. Functionally identical to [`Tape::var`]; the name
    /// documents intent (inputs, masks and targets rather than parameters).
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.var(value)
    }

    pub(crate) fn push(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
    ) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            parents,
            backward,
        });
        Var {
            tape: self,
            id: nodes.len() - 1,
        }
    }

    /// The current value of a variable (cloned).
    pub fn value(&self, var: Var<'_>) -> Tensor {
        self.nodes.borrow()[var.id].value.clone()
    }

    /// The gradient of the most recent [`Tape::backward`] call with respect
    /// to `var`.
    ///
    /// # Errors
    /// Returns [`TensorError::Empty`] if backward has not been run or the
    /// variable did not participate in the differentiated result.
    pub fn grad(&self, var: Var<'_>) -> Result<Tensor> {
        self.grads
            .borrow()
            .get(var.id)
            .and_then(|g| g.clone())
            .ok_or(TensorError::Empty { op: "grad" })
    }

    /// Runs reverse-mode accumulation from the scalar variable `output`.
    ///
    /// # Errors
    /// Returns an error if `output` is not a single-element tensor or if a
    /// recorded backward function produces a gradient of mismatched shape.
    pub fn backward(&self, output: Var<'_>) -> Result<()> {
        let nodes = self.nodes.borrow();
        let n = nodes.len();
        if nodes[output.id].value.len() != 1 {
            return Err(TensorError::RankMismatch {
                op: "backward",
                expected: 0,
                actual: nodes[output.id].value.shape().rank(),
            });
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[output.id] = Some(Tensor::full(nodes[output.id].value.shape().dims(), 1.0));

        for id in (0..=output.id).rev() {
            let Some(grad_out) = grads[id].clone() else {
                continue;
            };
            let node = &nodes[id];
            let Some(backward) = &node.backward else {
                continue;
            };
            let parent_grads = backward(&grad_out);
            debug_assert_eq!(parent_grads.len(), node.parents.len());
            for (parent, pg) in node.parents.iter().zip(parent_grads) {
                let parent_shape = nodes[*parent].value.shape().clone();
                if !pg.shape().same_as(&parent_shape) {
                    return Err(TensorError::ShapeMismatch {
                        op: "backward.accumulate",
                        lhs: pg.shape().dims().to_vec(),
                        rhs: parent_shape.dims().to_vec(),
                    });
                }
                grads[*parent] = Some(match grads[*parent].take() {
                    Some(existing) => existing.add(&pg)?,
                    None => pg,
                });
            }
        }
        *self.grads.borrow_mut() = grads;
        Ok(())
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tape").field("nodes", &self.len()).finish()
    }
}

/// Handle to a value recorded on a [`Tape`].
///
/// `Var` is a cheap `Copy` handle (tape reference + index). All mathematical
/// operations live on `Var` and push new nodes onto the owning tape.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    pub(crate) tape: &'t Tape,
    pub(crate) id: usize,
}

impl fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.id)
            .field("shape", &self.value().shape().dims().to_vec())
            .finish()
    }
}

impl<'t> Var<'t> {
    /// The tape this variable belongs to.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Index of this variable on its tape.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The current value (cloned).
    pub fn value(&self) -> Tensor {
        self.tape.value(*self)
    }

    /// The gradient computed by the last backward pass.
    ///
    /// # Errors
    /// See [`Tape::grad`].
    pub fn grad(&self) -> Result<Tensor> {
        self.tape.grad(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let tape = Tape::new();
        let v = tape.var(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        assert_eq!(v.value().as_slice(), &[1.0, 2.0]);
        assert_eq!(tape.len(), 1);
        assert!(!tape.is_empty());
    }

    #[test]
    fn grad_before_backward_errors() {
        let tape = Tape::new();
        let v = tape.var(Tensor::scalar(1.0));
        assert!(tape.grad(v).is_err());
    }

    #[test]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let v = tape.var(Tensor::zeros(&[2, 2]));
        assert!(tape.backward(v).is_err());
    }

    #[test]
    fn backward_on_leaf_scalar() {
        let tape = Tape::new();
        let v = tape.var(Tensor::scalar(5.0));
        tape.backward(v).unwrap();
        assert_eq!(tape.grad(v).unwrap().as_slice(), &[1.0]);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let tape = Tape::new();
        let v = tape.var(Tensor::scalar(1.0));
        assert!(!format!("{tape:?}").is_empty());
        assert!(format!("{v:?}").contains("Var"));
    }
}
