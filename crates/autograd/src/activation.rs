//! Differentiable activation functions: ReLU, GELU, tanh, sigmoid and
//! row-wise softmax.

use tensor::{Tensor, UnaryOp, GELU_COEFF, SQRT_2_OVER_PI};

use crate::{Result, Var};

/// Scalar GELU — delegates to the shared named op so the autograd forward
/// and the fused graph kernels run the same expression (test reference).
#[cfg(test)]
fn gelu_scalar(x: f32) -> f32 {
    UnaryOp::Gelu.eval(x)
}

fn gelu_grad_scalar(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x);
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEFF * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

impl<'t> Var<'t> {
    /// Rectified linear unit.
    pub fn relu(self) -> Var<'t> {
        let x = self.value();
        let value = x.apply(UnaryOp::Relu);
        self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                vec![g.mul(&mask).expect("same shape")]
            })),
        )
    }

    /// Gaussian error linear unit (tanh approximation), the non-linearity
    /// used inside the ViT encoder MLP and classification head.
    pub fn gelu(self) -> Var<'t> {
        let x = self.value();
        let value = x.apply(UnaryOp::Gelu);
        self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let dx = x.map(gelu_grad_scalar);
                vec![g.mul(&dx).expect("same shape")]
            })),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Var<'t> {
        let value = self.value().apply(UnaryOp::Tanh);
        let y = value.clone();
        self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let dy = y.map(|v| 1.0 - v * v);
                vec![g.mul(&dy).expect("same shape")]
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(self) -> Var<'t> {
        let value = self.value().apply(UnaryOp::Sigmoid);
        let y = value.clone();
        self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let dy = y.map(|v| v * (1.0 - v));
                vec![g.mul(&dy).expect("same shape")]
            })),
        )
    }

    /// Row-wise softmax (over the last axis of a matrix).
    ///
    /// Used for the attention weights inside multi-head self-attention.
    ///
    /// # Errors
    /// Returns an error for rank-0 or rank>2 tensors.
    pub fn softmax_rows(self) -> Result<Var<'t>> {
        let value = self.value().softmax_rows()?;
        let s = value.clone();
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                // dX = S ⊙ (G - rowsum(G ⊙ S))
                let (rows, cols) = s.shape().as_matrix().expect("softmax output is a matrix");
                let gs = g.mul(&s).expect("same shape");
                let mut out = vec![0.0f32; rows * cols];
                for i in 0..rows {
                    let dot: f32 = gs.as_slice()[i * cols..(i + 1) * cols].iter().sum();
                    for j in 0..cols {
                        let idx = i * cols + j;
                        out[idx] = s.as_slice()[idx] * (g.as_slice()[idx] - dot);
                    }
                }
                vec![Tensor::from_vec(out, s.shape().dims()).expect("same shape")]
            })),
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::Tape;
    use tensor::Tensor;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    /// Central-difference gradient check for a scalar-valued function of one
    /// tensor input.
    fn finite_diff<F>(x: &Tensor, f: F) -> Tensor
    where
        F: Fn(&Tensor) -> f32,
    {
        let eps = 1e-3;
        let mut grad = x.zeros_like();
        for i in 0..x.len() {
            let mut plus = x.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[i] -= eps;
            grad.as_mut_slice()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
        }
        grad
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn relu_forward_and_grad() {
        let tape = Tape::new();
        let x = tape.var(t(&[-1.0, 0.5, 2.0], &[3]));
        let loss = x.relu().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(loss.value().item().unwrap(), 2.5);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn gelu_matches_finite_difference() {
        let xv = t(&[-2.0, -0.5, 0.0, 0.7, 1.5], &[5]);
        let tape = Tape::new();
        let x = tape.var(xv.clone());
        let loss = x.gelu().sum_all().unwrap();
        tape.backward(loss).unwrap();
        let numeric = finite_diff(&xv, |v| v.map(super::gelu_scalar).sum());
        assert_close(&tape.grad(x).unwrap(), &numeric, 1e-2);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0, GELU(large) ≈ x, GELU(-large) ≈ 0
        assert!(super::gelu_scalar(0.0).abs() < 1e-7);
        assert!((super::gelu_scalar(6.0) - 6.0).abs() < 1e-3);
        assert!(super::gelu_scalar(-6.0).abs() < 1e-3);
    }

    #[test]
    fn tanh_and_sigmoid_gradients() {
        let xv = t(&[-1.0, 0.0, 1.0], &[3]);
        let tape = Tape::new();
        let x = tape.var(xv.clone());
        let loss = x.tanh().sum_all().unwrap();
        tape.backward(loss).unwrap();
        let numeric = finite_diff(&xv, |v| v.map(f32::tanh).sum());
        assert_close(&tape.grad(x).unwrap(), &numeric, 1e-2);

        let tape2 = Tape::new();
        let x2 = tape2.var(xv.clone());
        let loss2 = x2.sigmoid().sum_all().unwrap();
        tape2.backward(loss2).unwrap();
        let numeric2 = finite_diff(&xv, |v| v.map(|u| 1.0 / (1.0 + (-u).exp())).sum());
        assert_close(&tape2.grad(x2).unwrap(), &numeric2, 1e-2);
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let xv = t(&[0.2, -0.4, 1.3, 0.0, 0.9, -1.1], &[2, 3]);
        // Loss = sum of softmax * fixed weights (to get a non-trivial grad).
        let w = t(&[1.0, 2.0, 3.0, -1.0, 0.5, 0.0], &[2, 3]);
        let tape = Tape::new();
        let x = tape.var(xv.clone());
        let loss = x
            .softmax_rows()
            .unwrap()
            .mul_mask(&w)
            .unwrap()
            .sum_all()
            .unwrap();
        tape.backward(loss).unwrap();
        let wc = w.clone();
        let numeric = finite_diff(&xv, move |v| {
            v.softmax_rows().unwrap().mul(&wc).unwrap().sum()
        });
        assert_close(&tape.grad(x).unwrap(), &numeric, 1e-2);
    }

    #[test]
    fn softmax_rows_forward_is_normalized() {
        let tape = Tape::new();
        let x = tape.var(t(&[5.0, 5.0, 5.0, 1.0, 2.0, 3.0], &[2, 3]));
        let s = x.softmax_rows().unwrap().value();
        assert!((s.row(0).unwrap().sum() - 1.0).abs() < 1e-6);
        assert!((s.at(0, 0).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }
}
