//! Differentiable training losses: softmax cross-entropy for the reference
//! point classification problem and mean squared error for regression /
//! autoencoder baselines.

use tensor::Tensor;

use crate::{Result, Var};

impl<'t> Var<'t> {
    /// Mean softmax cross-entropy between logits (`batch × classes`) and
    /// integer class targets.
    ///
    /// The value is averaged over the batch. The gradient with respect to the
    /// logits is `(softmax − one-hot) / batch`.
    ///
    /// # Errors
    /// Returns an error if `self` is not a matrix, `targets.len()` differs
    /// from the number of rows, or any target index is out of range.
    pub fn softmax_cross_entropy(self, targets: &[usize]) -> Result<Var<'t>> {
        let logits = self.value();
        let (batch, classes) = logits.shape().as_matrix()?;
        if targets.len() != batch {
            return Err(tensor::TensorError::ShapeMismatch {
                op: "softmax_cross_entropy",
                lhs: vec![batch, classes],
                rhs: vec![targets.len()],
            });
        }
        if let Some(&bad) = targets.iter().find(|&&t| t >= classes) {
            return Err(tensor::TensorError::IndexOutOfBounds {
                op: "softmax_cross_entropy",
                index: bad,
                bound: classes,
            });
        }

        let probs = logits.softmax_rows()?;
        let mut total = 0.0f32;
        for (i, &target) in targets.iter().enumerate() {
            let p = probs.at(i, target)?.max(1e-12);
            total -= p.ln();
        }
        let value = Tensor::scalar(total / batch as f32);

        let targets_owned = targets.to_vec();
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let scale = g.as_slice()[0] / batch as f32;
                let mut grad = probs.clone();
                for (i, &target) in targets_owned.iter().enumerate() {
                    let current = grad.at(i, target).expect("validated at record time");
                    grad.set(i, target, current - 1.0)
                        .expect("validated at record time");
                }
                vec![grad.scale(scale)]
            })),
        ))
    }

    /// Mean squared error against a constant target tensor of identical shape.
    ///
    /// # Errors
    /// Returns an error if the shapes differ.
    pub fn mse_loss(self, target: &Tensor) -> Result<Var<'t>> {
        let pred = self.value();
        if !pred.shape().same_as(target.shape()) {
            return Err(tensor::TensorError::ShapeMismatch {
                op: "mse_loss",
                lhs: pred.shape().dims().to_vec(),
                rhs: target.shape().dims().to_vec(),
            });
        }
        let n = pred.len() as f32;
        let diff = pred.sub(target)?;
        let value = Tensor::scalar(diff.as_slice().iter().map(|d| d * d).sum::<f32>() / n);
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let scale = 2.0 * g.as_slice()[0] / n;
                vec![diff.scale(scale)]
            })),
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::Tape;
    use tensor::Tensor;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_classes() {
        let tape = Tape::new();
        let logits = tape.var(Tensor::zeros(&[2, 4]));
        let loss = logits.softmax_cross_entropy(&[0, 3]).unwrap();
        assert!((loss.value().item().unwrap() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_decreases_for_confident_correct_prediction() {
        let tape = Tape::new();
        let confident = tape.var(t(&[10.0, 0.0, 0.0], &[1, 3]));
        let uncertain = tape.var(t(&[1.0, 0.0, 0.0], &[1, 3]));
        let lc = confident.softmax_cross_entropy(&[0]).unwrap();
        let lu = uncertain.softmax_cross_entropy(&[0]).unwrap();
        assert!(lc.value().item().unwrap() < lu.value().item().unwrap());
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let tape = Tape::new();
        let logits_t = t(&[1.0, 2.0, 0.5, -0.5, 0.0, 1.5], &[2, 3]);
        let logits = tape.var(logits_t.clone());
        let loss = logits.softmax_cross_entropy(&[1, 2]).unwrap();
        tape.backward(loss).unwrap();
        let probs = logits_t.softmax_rows().unwrap();
        let g = tape.grad(logits).unwrap();
        for i in 0..2 {
            for j in 0..3 {
                let onehot = if (i == 0 && j == 1) || (i == 1 && j == 2) {
                    1.0
                } else {
                    0.0
                };
                let expected = (probs.at(i, j).unwrap() - onehot) / 2.0;
                assert!((g.at(i, j).unwrap() - expected).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn cross_entropy_validates_inputs() {
        let tape = Tape::new();
        let logits = tape.var(Tensor::zeros(&[2, 3]));
        assert!(logits.softmax_cross_entropy(&[0]).is_err());
        assert!(logits.softmax_cross_entropy(&[0, 3]).is_err());
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let tape = Tape::new();
        let pred = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let target = t(&[0.0, 2.0, 3.0, 8.0], &[2, 2]);
        let loss = pred.mse_loss(&target).unwrap();
        // mean of [1, 0, 0, 16] = 4.25
        assert!((loss.value().item().unwrap() - 4.25).abs() < 1e-6);
        tape.backward(loss).unwrap();
        // grad = 2*(pred-target)/4
        assert_eq!(tape.grad(pred).unwrap().as_slice(), &[0.5, 0.0, 0.0, -2.0]);
        assert!(pred.mse_loss(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn gradient_descent_on_mse_converges() {
        // Minimal end-to-end sanity check: fit y = 2x with a single weight.
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[4, 1]);
        let y = t(&[2.0, 4.0, 6.0, 8.0], &[4, 1]);
        let mut w = t(&[0.0], &[1, 1]);
        for _ in 0..200 {
            let tape = Tape::new();
            let xv = tape.constant(x.clone());
            let wv = tape.var(w.clone());
            let pred = xv.matmul(wv).unwrap();
            let loss = pred.mse_loss(&y).unwrap();
            tape.backward(loss).unwrap();
            let gw = tape.grad(wv).unwrap();
            w = w.sub(&gw.scale(0.05)).unwrap();
        }
        assert!((w.as_slice()[0] - 2.0).abs() < 1e-2);
    }
}
