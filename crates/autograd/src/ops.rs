//! Arithmetic and linear-algebra primitives with recorded gradients.

use tensor::Tensor;

use crate::{Result, Var};

// `add`/`sub`/`mul` deliberately shadow the `std::ops` names: recording onto
// the tape is fallible (shape mismatches), so the operator traits' infallible
// signatures cannot express them, and the whole workspace already reads
// `a.add(b)?`. The clippy lint is suppressed rather than renaming the API.
#[allow(clippy::should_implement_trait)]
impl<'t> Var<'t> {
    /// Elementwise addition. Gradient flows unchanged to both operands.
    ///
    /// # Errors
    /// Returns an error if the operand shapes differ.
    pub fn add(self, other: Var<'t>) -> Result<Var<'t>> {
        let value = self.value().add(&other.value())?;
        Ok(self.tape.push(
            value,
            vec![self.id, other.id],
            Some(Box::new(move |g: &Tensor| vec![g.clone(), g.clone()])),
        ))
    }

    /// Elementwise subtraction (`self - other`).
    ///
    /// # Errors
    /// Returns an error if the operand shapes differ.
    pub fn sub(self, other: Var<'t>) -> Result<Var<'t>> {
        let value = self.value().sub(&other.value())?;
        Ok(self.tape.push(
            value,
            vec![self.id, other.id],
            Some(Box::new(move |g: &Tensor| vec![g.clone(), g.scale(-1.0)])),
        ))
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    /// Returns an error if the operand shapes differ.
    pub fn mul(self, other: Var<'t>) -> Result<Var<'t>> {
        let a = self.value();
        let b = other.value();
        let value = a.mul(&b)?;
        Ok(self.tape.push(
            value,
            vec![self.id, other.id],
            Some(Box::new(move |g: &Tensor| {
                vec![
                    g.mul(&b).expect("shapes fixed at record time"),
                    g.mul(&a).expect("shapes fixed at record time"),
                ]
            })),
        ))
    }

    /// Multiplies every element by the scalar `c`.
    pub fn scale(self, c: f32) -> Var<'t> {
        let value = self.value().scale(c);
        self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| vec![g.scale(c)])),
        )
    }

    /// Adds the scalar `c` to every element.
    pub fn add_scalar(self, c: f32) -> Var<'t> {
        let value = self.value().add_scalar(c);
        self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| vec![g.clone()])),
        )
    }

    /// Elementwise multiplication by a *constant* tensor (no gradient flows
    /// into the mask). This is the primitive behind dropout.
    ///
    /// # Errors
    /// Returns an error if the shapes differ.
    pub fn mul_mask(self, mask: &Tensor) -> Result<Var<'t>> {
        let value = self.value().mul(mask)?;
        let mask = mask.clone();
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                vec![g.mul(&mask).expect("shapes fixed at record time")]
            })),
        ))
    }

    /// Matrix product `self · other`.
    ///
    /// Gradients: `dA = g · Bᵀ`, `dB = Aᵀ · g`.
    ///
    /// # Errors
    /// Returns an error if the inner dimensions differ.
    pub fn matmul(self, other: Var<'t>) -> Result<Var<'t>> {
        let a = self.value();
        let b = other.value();
        let value = a.matmul(&b)?;
        let a_shape_is_vec = a.shape().rank() == 1;
        let b_shape_is_vec = b.shape().rank() == 1;
        // The forward pass promotes rank-1 operands to matrices (row on the
        // left, k×1 column on the right — see `Tensor::matmul`). The backward
        // pass works on those matrix views and flattens the gradients back to
        // the recorded parents' rank-1 shapes at the end.
        let am = if a_shape_is_vec { a.as_row_matrix() } else { a };
        let k = am.cols().expect("matmul lhs is a matrix view");
        let bm = if b_shape_is_vec {
            if k == 1 {
                b.as_row_matrix()
            } else {
                b.reshape(&[k, 1])
                    .expect("length checked by forward matmul")
            }
        } else {
            b
        };
        Ok(self.tape.push(
            value,
            vec![self.id, other.id],
            Some(Box::new(move |g: &Tensor| {
                let da = g.matmul_nt(&bm).expect("shapes fixed at record time");
                let db = am.matmul_tn(g).expect("shapes fixed at record time");
                let da = if a_shape_is_vec { da.flatten() } else { da };
                let db = if b_shape_is_vec { db.flatten() } else { db };
                vec![da, db]
            })),
        ))
    }

    /// Adds a rank-1 bias vector to every row of a matrix.
    ///
    /// Gradients: `dX = g`, `dbias = Σ_rows g`.
    ///
    /// # Errors
    /// Returns an error if `bias.len()` differs from the column count.
    pub fn add_row_broadcast(self, bias: Var<'t>) -> Result<Var<'t>> {
        let value = self.value().add_row_broadcast(&bias.value())?;
        Ok(self.tape.push(
            value,
            vec![self.id, bias.id],
            Some(Box::new(move |g: &Tensor| {
                vec![
                    g.clone(),
                    g.sum_rows().expect("gradient of a matrix has rows"),
                ]
            })),
        ))
    }

    /// Multiplies every row of a matrix elementwise by a rank-1 vector.
    ///
    /// # Errors
    /// Returns an error if `scale.len()` differs from the column count.
    pub fn mul_row_broadcast(self, scale: Var<'t>) -> Result<Var<'t>> {
        let x = self.value();
        let s = scale.value();
        let value = x.mul_row_broadcast(&s)?;
        Ok(self.tape.push(
            value,
            vec![self.id, scale.id],
            Some(Box::new(move |g: &Tensor| {
                let dx = g.mul_row_broadcast(&s).expect("shapes fixed");
                let ds = g
                    .mul(&x)
                    .expect("shapes fixed")
                    .sum_rows()
                    .expect("matrix has rows");
                vec![dx, ds]
            })),
        ))
    }

    /// Sum of all elements, producing a scalar variable.
    ///
    /// # Errors
    /// This operation itself is infallible for any non-empty tensor but keeps
    /// a `Result` signature for composition with `?` chains.
    pub fn sum_all(self) -> Result<Var<'t>> {
        let x = self.value();
        let shape: Vec<usize> = x.shape().dims().to_vec();
        let value = Tensor::scalar(x.sum());
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let gv = g.as_slice()[0];
                vec![Tensor::full(&shape, gv)]
            })),
        ))
    }

    /// Mean of all elements, producing a scalar variable.
    ///
    /// # Errors
    /// Returns an error for empty tensors.
    pub fn mean_all(self) -> Result<Var<'t>> {
        let x = self.value();
        if x.is_empty() {
            return Err(tensor::TensorError::Empty { op: "mean_all" });
        }
        let n = x.len() as f32;
        let shape: Vec<usize> = x.shape().dims().to_vec();
        let value = Tensor::scalar(x.mean());
        Ok(self.tape.push(
            value,
            vec![self.id],
            Some(Box::new(move |g: &Tensor| {
                let gv = g.as_slice()[0] / n;
                vec![Tensor::full(&shape, gv)]
            })),
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::Tape;
    use tensor::Tensor;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn add_and_sub_gradients() {
        let tape = Tape::new();
        let a = tape.var(t(&[1.0, 2.0], &[2]));
        let b = tape.var(t(&[3.0, 4.0], &[2]));
        let y = a.add(b).unwrap().sub(a).unwrap(); // y = b
        let loss = y.sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
        // a contributes +1 and -1 -> 0
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn mul_gradients() {
        let tape = Tape::new();
        let a = tape.var(t(&[2.0, 3.0], &[2]));
        let b = tape.var(t(&[5.0, 7.0], &[2]));
        let loss = a.mul(b).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let tape = Tape::new();
        let a = tape.var(t(&[1.0, -1.0], &[2]));
        let loss = a.scale(3.0).add_scalar(10.0).sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[3.0, 3.0]);
        assert_eq!(loss.value().item().unwrap(), 20.0);
    }

    #[test]
    fn matmul_gradients_match_manual() {
        let tape = Tape::new();
        let a = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.var(t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let loss = a.matmul(b).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        // dA = ones(2,2) * B^T ; dB = A^T * ones(2,2)
        let ones = Tensor::ones(&[2, 2]);
        let da = ones.matmul_nt(&b.value()).unwrap();
        let db = a.value().matmul_tn(&ones).unwrap();
        assert_eq!(tape.grad(a).unwrap(), da);
        assert_eq!(tape.grad(b).unwrap(), db);
    }

    #[test]
    fn bias_broadcast_gradient_sums_rows() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = tape.var(t(&[10.0, 20.0], &[2]));
        let loss = x.add_row_broadcast(b).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[2.0, 2.0]);
        assert_eq!(tape.grad(x).unwrap(), Tensor::ones(&[2, 2]));
    }

    #[test]
    fn scale_broadcast_gradients() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let s = tape.var(t(&[2.0, 0.5], &[2]));
        let loss = x.mul_row_broadcast(s).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        // dX[i][j] = s[j]; dS[j] = sum_i x[i][j]
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[2.0, 0.5, 2.0, 0.5]);
        assert_eq!(tape.grad(s).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn mask_blocks_gradient_into_dropped_elements() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0, 3.0], &[3]));
        let mask = t(&[1.0, 0.0, 2.0], &[3]);
        let loss = x.mul_mask(&mask).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn mean_all_divides_gradient() {
        let tape = Tape::new();
        let x = tape.var(t(&[2.0, 4.0, 6.0, 8.0], &[4]));
        let loss = x.mean_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[0.25; 4]);
        assert!(tape.var(Tensor::zeros(&[0])).mean_all().is_err());
    }

    #[test]
    fn vector_matmul_gradient_has_vector_shape() {
        let tape = Tape::new();
        let x = tape.var(t(&[1.0, 2.0], &[2]));
        let w = tape.var(t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]));
        let loss = x.matmul(w).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();
        assert_eq!(tape.grad(x).unwrap().shape().dims(), &[2]);
    }
}
