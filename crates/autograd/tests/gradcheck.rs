//! Property-based finite-difference gradient checks on randomly generated
//! computation graphs that exercise the composition of autograd primitives
//! the VITAL transformer relies on (affine → layer-norm → GELU → softmax).

use autograd::Tape;
use proptest::prelude::*;
use tensor::rng::SeededRng;
use tensor::Tensor;

/// Scalar objective used in all checks: a fixed-weight sum so the gradient is
/// non-trivial but deterministic.
fn weighted_sum(t: &Tensor, weights: &Tensor) -> f32 {
    t.mul(weights).unwrap().sum()
}

fn finite_diff(x: &Tensor, f: impl Fn(&Tensor) -> f32, eps: f32) -> Tensor {
    let mut grad = x.zeros_like();
    for i in 0..x.len() {
        let mut plus = x.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = x.clone();
        minus.as_mut_slice()[i] -= eps;
        grad.as_mut_slice()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
    }
    grad
}

fn assert_close(analytic: &Tensor, numeric: &Tensor, tol: f32) -> Result<(), TestCaseError> {
    for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        prop_assert!(
            (a - n).abs() < tol.max(0.02 * n.abs()),
            "analytic {a} vs numeric {n}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_gelu_chain_gradcheck(seed in 0u64..500, rows in 1usize..4, inner in 1usize..5, cols in 1usize..4) {
        let mut rng = SeededRng::new(seed);
        let x = rng.uniform_tensor(&[rows, inner], -1.0, 1.0);
        let w = rng.uniform_tensor(&[inner, cols], -1.0, 1.0);
        let b = rng.uniform_tensor(&[cols], -0.5, 0.5);
        let weights = rng.uniform_tensor(&[rows, cols], -1.0, 1.0);

        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.var(w.clone());
        let bv = tape.var(b.clone());
        let out = xv.matmul(wv).unwrap().add_row_broadcast(bv).unwrap().gelu();
        let loss = out.mul_mask(&weights).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();

        let wc = weights.clone();
        let xc = x.clone();
        let bc = b.clone();
        let numeric_w = finite_diff(&w, |w_| {
            let y = xc.matmul(w_).unwrap().add_row_broadcast(&bc).unwrap();
            weighted_sum(&y.map(|v| 0.5 * v * (1.0 + (0.797_884_6 * (v + 0.044_715 * v * v * v)).tanh())), &wc)
        }, 1e-3);
        assert_close(&tape.grad(wv).unwrap(), &numeric_w, 3e-2)?;
    }

    #[test]
    fn layernorm_softmax_chain_gradcheck(seed in 0u64..500, rows in 1usize..4, cols in 2usize..6) {
        let mut rng = SeededRng::new(seed);
        let x = rng.uniform_tensor(&[rows, cols], -2.0, 2.0);
        let gamma = rng.uniform_tensor(&[cols], 0.5, 1.5);
        let beta = rng.uniform_tensor(&[cols], -0.5, 0.5);
        let weights = rng.uniform_tensor(&[rows, cols], -1.0, 1.0);

        let tape = Tape::new();
        let xv = tape.var(x.clone());
        let gv = tape.constant(gamma.clone());
        let bv = tape.constant(beta.clone());
        let out = xv
            .layer_norm(gv, bv, 1e-5)
            .unwrap()
            .softmax_rows()
            .unwrap();
        let loss = out.mul_mask(&weights).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();

        let reference = |x_: &Tensor| {
            let (r, c) = x_.shape().as_matrix().unwrap();
            let mut normalized = vec![0.0f32; r * c];
            for i in 0..r {
                let row = &x_.as_slice()[i * c..(i + 1) * c];
                let mean: f32 = row.iter().sum::<f32>() / c as f32;
                let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / c as f32;
                for j in 0..c {
                    normalized[i * c + j] =
                        gamma.as_slice()[j] * (row[j] - mean) / (var + 1e-5).sqrt() + beta.as_slice()[j];
                }
            }
            let n = Tensor::from_vec(normalized, &[r, c]).unwrap();
            weighted_sum(&n.softmax_rows().unwrap(), &weights)
        };
        let numeric = finite_diff(&x, reference, 1e-3);
        assert_close(&tape.grad(xv).unwrap(), &numeric, 3e-2)?;
    }

    #[test]
    fn packed_gemm_gradcheck_across_panel_boundaries(
        seed in 0u64..300,
        m in 1usize..11,
        inner in 1usize..19,
        cols in 1usize..11,
    ) {
        // Sizes straddle the kernel's MR/NR tile edges on the small-product
        // fast path; `packed_path_gradcheck` below covers the packed kernel.
        let mut rng = SeededRng::new(seed.wrapping_add(7_000));
        let x = rng.uniform_tensor(&[m, inner], -1.0, 1.0);
        let w = rng.uniform_tensor(&[inner, cols], -1.0, 1.0);
        let weights = rng.uniform_tensor(&[m, cols], -1.0, 1.0);

        let tape = Tape::new();
        let xv = tape.var(x.clone());
        let wv = tape.var(w.clone());
        let out = xv.matmul(wv).unwrap();
        let loss = out.mul_mask(&weights).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();

        let wc = weights.clone();
        let xc = x.clone();
        let numeric_w = finite_diff(&w, |w_| weighted_sum(&xc.matmul(w_).unwrap(), &wc), 1e-3);
        assert_close(&tape.grad(wv).unwrap(), &numeric_w, 2e-2)?;
        let wc2 = weights.clone();
        let w2 = w.clone();
        let numeric_x = finite_diff(&x, |x_| weighted_sum(&x_.matmul(&w2).unwrap(), &wc2), 1e-3);
        assert_close(&tape.grad(xv).unwrap(), &numeric_x, 2e-2)?;
    }

    #[test]
    fn rank1_rhs_matmul_gradcheck(seed in 0u64..300, m in 1usize..6, inner in 2usize..9) {
        // The k×1-column interpretation of a rank-1 RHS must backprop a
        // rank-1 gradient of the same length.
        let mut rng = SeededRng::new(seed.wrapping_add(8_000));
        let a = rng.uniform_tensor(&[m, inner], -1.0, 1.0);
        let v = rng.uniform_tensor(&[inner], -1.0, 1.0);
        let weights = rng.uniform_tensor(&[m, 1], -1.0, 1.0);

        let tape = Tape::new();
        let av = tape.var(a.clone());
        let vv = tape.var(v.clone());
        let out = av.matmul(vv).unwrap();
        prop_assert!(out.value().shape().dims() == [m, 1]);
        let loss = out.mul_mask(&weights).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();

        let grad_v = tape.grad(vv).unwrap();
        prop_assert!(grad_v.shape().dims() == [inner]);
        let ac = a.clone();
        let wc = weights.clone();
        let numeric_v = finite_diff(&v, |v_| {
            weighted_sum(&ac.matmul(&v_.reshape(&[v_.len(), 1]).unwrap()).unwrap(), &wc)
        }, 1e-3);
        assert_close(&grad_v, &numeric_v, 2e-2)?;
    }

    #[test]
    fn batched_stack_ops_gradcheck(
        seed in 0u64..300,
        samples in 1usize..4,
        block in 1usize..4,
        cols in 1usize..5,
    ) {
        // add_tile_rows → mean_pool_row_blocks: the batched ViT spine.
        let mut rng = SeededRng::new(seed.wrapping_add(9_000));
        let x = rng.uniform_tensor(&[samples * block, cols], -1.0, 1.0);
        let tile = rng.uniform_tensor(&[block, cols], -1.0, 1.0);
        let weights = rng.uniform_tensor(&[samples, cols], -1.0, 1.0);

        let tape = Tape::new();
        let xv = tape.var(x.clone());
        let tv = tape.var(tile.clone());
        let pooled = xv
            .add_tile_rows(tv, samples)
            .unwrap()
            .mean_pool_row_blocks(block)
            .unwrap();
        let loss = pooled.mul_mask(&weights).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();

        let reference = |x_: &Tensor, tile_: &Tensor| {
            let tiled = tile_.repeat_rows(samples).unwrap();
            let summed = x_.add(&tiled).unwrap();
            weighted_sum(&summed.mean_row_blocks(block).unwrap(), &weights)
        };
        let tc = tile.clone();
        let numeric_x = finite_diff(&x, |x_| reference(x_, &tc), 1e-3);
        assert_close(&tape.grad(xv).unwrap(), &numeric_x, 2e-2)?;
        let xc = x.clone();
        let numeric_t = finite_diff(&tile, |t_| reference(&xc, t_), 1e-3);
        assert_close(&tape.grad(tv).unwrap(), &numeric_t, 2e-2)?;
    }

    #[test]
    fn cross_entropy_gradcheck(seed in 0u64..500, batch in 1usize..4, classes in 2usize..6) {
        let mut rng = SeededRng::new(seed);
        let logits = rng.uniform_tensor(&[batch, classes], -2.0, 2.0);
        let targets: Vec<usize> = (0..batch).map(|_| rng.index(classes)).collect();

        let tape = Tape::new();
        let lv = tape.var(logits.clone());
        let loss = lv.softmax_cross_entropy(&targets).unwrap();
        tape.backward(loss).unwrap();

        let numeric = finite_diff(&logits, |l| {
            let probs = l.softmax_rows().unwrap();
            let mut total = 0.0;
            for (i, &t) in targets.iter().enumerate() {
                total -= probs.at(i, t).unwrap().max(1e-12).ln();
            }
            total / batch as f32
        }, 1e-3);
        assert_close(&tape.grad(lv).unwrap(), &numeric, 2e-2)?;
    }

    #[test]
    fn attention_like_block_gradcheck(seed in 0u64..300, n in 2usize..4, d in 2usize..4) {
        // score = softmax(Q Kᵀ / sqrt(d)) V — the core of MSA.
        let mut rng = SeededRng::new(seed);
        let q = rng.uniform_tensor(&[n, d], -1.0, 1.0);
        let k = rng.uniform_tensor(&[n, d], -1.0, 1.0);
        let v = rng.uniform_tensor(&[n, d], -1.0, 1.0);
        let weights = rng.uniform_tensor(&[n, d], -1.0, 1.0);
        let scale = 1.0 / (d as f32).sqrt();

        let tape = Tape::new();
        let qv = tape.var(q.clone());
        let kv = tape.constant(k.clone());
        let vv = tape.constant(v.clone());
        let scores = qv
            .matmul(kv.transpose().unwrap())
            .unwrap()
            .scale(scale)
            .softmax_rows()
            .unwrap();
        let out = scores.matmul(vv).unwrap();
        let loss = out.mul_mask(&weights).unwrap().sum_all().unwrap();
        tape.backward(loss).unwrap();

        let numeric = finite_diff(&q, |q_| {
            let s = q_
                .matmul(&k.transpose().unwrap())
                .unwrap()
                .scale(scale)
                .softmax_rows()
                .unwrap();
            weighted_sum(&s.matmul(&v).unwrap(), &weights)
        }, 1e-3);
        assert_close(&tape.grad(qv).unwrap(), &numeric, 3e-2)?;
    }
}

/// Deterministic gradcheck at a size whose forward and backward GEMMs all
/// exceed the small-product cutoff (`k·n > 4096`), so the packed parallel
/// kernel — padded edge panels included — is what gets differentiated.
#[test]
fn packed_path_gradcheck() {
    let (m, inner, cols) = (9, 70, 67);
    let mut rng = SeededRng::new(1234);
    let x = rng.uniform_tensor(&[m, inner], -1.0, 1.0);
    let w = rng.uniform_tensor(&[inner, cols], -1.0, 1.0);
    let weights = rng.uniform_tensor(&[m, cols], -1.0, 1.0);

    let tape = Tape::new();
    let xv = tape.constant(x.clone());
    let wv = tape.var(w.clone());
    let loss = xv
        .matmul(wv)
        .unwrap()
        .mul_mask(&weights)
        .unwrap()
        .sum_all()
        .unwrap();
    tape.backward(loss).unwrap();

    let numeric = finite_diff(
        &w,
        |w_| weighted_sum(&x.matmul(w_).unwrap(), &weights),
        1e-3,
    );
    let analytic = tape.grad(wv).unwrap();
    for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        assert!(
            (a - n).abs() < 0.02f32.max(0.02 * n.abs()),
            "analytic {a} vs numeric {n}"
        );
    }
}
