use std::fmt;

use crate::TensorError;

/// The dimensions of a [`crate::Tensor`].
///
/// A shape is an ordered list of axis sizes. Rank-0 (scalar), rank-1
/// (vector), rank-2 (matrix) and rank-3 tensors are all used by the VITAL
/// pipeline; higher ranks are supported but untested.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from axis sizes.
    ///
    /// ```
    /// use tensor::Shape;
    /// let s = Shape::new(&[3, 4]);
    /// assert_eq!(s.volume(), 12);
    /// ```
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The axis sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of the axis sizes, `1` for scalars).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of axis `axis`.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                op: "shape.dim",
                index: axis,
                bound: self.0.len(),
            })
    }

    /// Row-major strides for this shape (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Returns `true` when both shapes have identical dims.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.0 == other.0
    }

    /// Interprets the shape as a matrix, returning `(rows, cols)`.
    ///
    /// Rank-1 shapes are viewed as a single row; rank-2 as-is.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for rank-0 or rank>2 shapes.
    pub fn as_matrix(&self) -> Result<(usize, usize), TensorError> {
        match self.0.as_slice() {
            [n] => Ok((1, *n)),
            [r, c] => Ok((*r, *c)),
            other => Err(TensorError::RankMismatch {
                op: "as_matrix",
                expected: 2,
                actual: other.len(),
            }),
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let v = Shape::new(&[5]);
        assert_eq!(v.strides(), vec![1]);
    }

    #[test]
    fn dim_bounds() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.dim(1).unwrap(), 3);
        assert!(s.dim(2).is_err());
    }

    #[test]
    fn as_matrix_views() {
        assert_eq!(Shape::new(&[7]).as_matrix().unwrap(), (1, 7));
        assert_eq!(Shape::new(&[3, 5]).as_matrix().unwrap(), (3, 5));
        assert!(Shape::new(&[2, 2, 2]).as_matrix().is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2×3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn from_conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert!(a.same_as(&b));
    }
}
