//! Tensor-buffer allocation counting (feature `alloc-count`).
//!
//! The serve hot path's headline number is *allocations per request*, and
//! a number nobody measures regresses silently. With the `alloc-count`
//! feature enabled, every fresh tensor buffer — everything funnelled
//! through the crate-internal `Tensor::from_parts` constructor — bumps a
//! process-wide relaxed atomic counter that benches and tests read via
//! [`tensor_allocs`].
//!
//! What is (deliberately) counted: every constructor that builds a new
//! `Vec<f32>` buffer (`from_vec`, `zeros`, kernel outputs, slices,
//! concats…). What is not: `O(1)` `Arc` clones and `reshape` (they share
//! storage — those *are* the zero-alloc paths the graph executor exploits)
//! and transient scratch such as the GEMM pack buffers, which exist with
//! or without the graph executor and are not tensors. The metric is
//! therefore "tensor materialisations", the thing the compiled-plan arena
//! exists to eliminate.
//!
//! A `#[global_allocator]` hook would count raw mallocs instead, but needs
//! `unsafe` — banned workspace-wide by the lint-pinned
//! `#![forbid(unsafe_code)]` attributes — and would also count noise the
//! arena cannot address. Counting at the `from_parts` choke point keeps
//! the number attributable.

use std::sync::atomic::{AtomicU64, Ordering};

static TENSOR_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Total tensor-buffer allocations since process start.
///
/// Monotonic; callers diff two readings around a region of interest.
/// Relaxed ordering is sufficient — the count is a statistic, not a
/// synchronisation point.
pub fn tensor_allocs() -> u64 {
    TENSOR_ALLOCS.load(Ordering::Relaxed)
}

/// Records one fresh tensor-buffer allocation (crate-internal hook).
#[inline]
pub(crate) fn record_alloc() {
    TENSOR_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    // Other tests allocate concurrently, so assertions here are
    // monotonic lower bounds, not exact deltas.
    #[test]
    fn fresh_buffers_bump_the_counter() {
        let before = super::tensor_allocs();
        let _t = Tensor::zeros(&[4, 4]);
        assert!(super::tensor_allocs() > before, "zeros must allocate");
    }
}
