use std::fmt;
use std::sync::Arc;

use crate::{Result, Shape, TensorError};

/// A dense, row-major `f32` tensor with shared, copy-on-write storage.
///
/// `Tensor` is the single numeric container used throughout the VITAL
/// workspace. Its buffer is always contiguous (which keeps the autograd
/// layer simple) and lives behind an [`Arc`], so:
///
/// * **Cloning is `O(1)`** — a clone bumps a reference count instead of
///   copying the data. Model weights snapshotted onto autograd tapes, or
///   shared between concurrent inference workers, all read the *same*
///   allocation with no lock and no copy. `Tensor` is `Send + Sync`.
/// * **Mutation is copy-on-write** — [`Tensor::as_mut_slice`] (and the
///   in-place helpers built on it) mutate the buffer directly when this
///   handle is the only owner, and transparently detach onto a private
///   copy first when it is shared. Freshly created tensors are always
///   unique, so hot-path kernels that fill a new buffer never pay the
///   copy; results are bit-identical either way.
///
/// # Example
/// ```
/// use tensor::Tensor;
/// # fn main() -> Result<(), tensor::TensorError> {
/// let x = Tensor::zeros(&[2, 3]);
/// assert_eq!(x.shape().dims(), &[2, 3]);
/// assert_eq!(x.len(), 6);
/// # Ok(())
/// # }
/// ```
///
/// `Tensor` implements hand-rolled `serde` `Serialize`/`Deserialize`
/// (see the crate's `serde_impl` module): the wire form is the shape
/// followed by the contiguous row-major data, validated on load.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Arc<Vec<f32>>,
    shape: Shape,
}

impl Tensor {
    /// Internal constructor for a freshly built buffer whose length is
    /// already known to match `shape` (the `Arc` it creates is unique, so
    /// subsequent in-place writes take the no-copy path).
    pub(crate) fn from_parts(data: Vec<f32>, shape: Shape) -> Self {
        debug_assert_eq!(data.len(), shape.volume());
        #[cfg(feature = "alloc-count")]
        crate::alloc_count::record_alloc();
        Tensor {
            data: Arc::new(data),
            shape,
        }
    }

    /// Creates a tensor from a flat row-major buffer and a shape.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` is not the
    /// product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                provided: data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor::from_parts(data, shape))
    }

    /// Creates a scalar tensor holding `value`.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_parts(vec![value], Shape::scalar())
    }

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()];
        Tensor::from_parts(data, shape)
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()];
        Tensor::from_parts(data, shape)
    }

    /// Creates a square identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_parts(data, Shape::new(&[n, n]))
    }

    /// Creates a zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Tensor::from_parts(vec![0.0; self.data.len()], self.shape.clone())
    }

    /// A 1-D tensor containing `n` evenly spaced values from `start` to `end` inclusive.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n > 0, "linspace requires at least one point");
        if n == 1 {
            return Tensor::from_vec(vec![start], &[1]).expect("length 1 matches shape [1]");
        }
        let step = (end - start) / (n - 1) as f32;
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor::from_parts(data, Shape::new(&[n]))
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The number of rows when viewed as a matrix (rank 1 → 1 row).
    ///
    /// # Errors
    /// Returns an error for rank-0 or rank>2 tensors.
    pub fn rows(&self) -> Result<usize> {
        Ok(self.shape.as_matrix()?.0)
    }

    /// The number of columns when viewed as a matrix.
    ///
    /// # Errors
    /// Returns an error for rank-0 or rank>2 tensors.
    pub fn cols(&self) -> Result<usize> {
        Ok(self.shape.as_matrix()?.1)
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    ///
    /// Copy-on-write: when the storage is shared with other tensor handles
    /// (clones are `O(1)` reference bumps), this first detaches onto a
    /// private copy so the mutation can never be observed through them. A
    /// uniquely-owned buffer — every freshly created tensor — is mutated in
    /// place with no copy.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor and returns its buffer (clones only if the
    /// storage is still shared with another handle).
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Element at a 2-D position `(row, col)`.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix or indices are out of
    /// bounds.
    pub fn at(&self, row: usize, col: usize) -> Result<f32> {
        let (r, c) = self.shape.as_matrix()?;
        if row >= r {
            return Err(TensorError::IndexOutOfBounds {
                op: "at.row",
                index: row,
                bound: r,
            });
        }
        if col >= c {
            return Err(TensorError::IndexOutOfBounds {
                op: "at.col",
                index: col,
                bound: c,
            });
        }
        Ok(self.data[row * c + col])
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix or indices are out of
    /// bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) -> Result<()> {
        let (r, c) = self.shape.as_matrix()?;
        if row >= r || col >= c {
            return Err(TensorError::IndexOutOfBounds {
                op: "set",
                index: row.max(col),
                bound: r.max(c),
            });
        }
        self.as_mut_slice()[row * c + col] = value;
        Ok(())
    }

    /// Returns a copy of row `row` as a rank-1 tensor.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix or `row` is out of bounds.
    pub fn row(&self, row: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        if row >= r {
            return Err(TensorError::IndexOutOfBounds {
                op: "row",
                index: row,
                bound: r,
            });
        }
        Ok(Tensor::from_parts(
            self.data[row * c..(row + 1) * c].to_vec(),
            Shape::new(&[c]),
        ))
    }

    /// Reinterprets the tensor with a new shape of the same volume.
    ///
    /// The result *shares* this tensor's storage (`O(1)`, no copy);
    /// copy-on-write keeps later mutations of either handle private.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                provided: self.data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Tensor {
            data: Arc::clone(&self.data),
            shape,
        })
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if the tensor holds more than
    /// one element.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() != 1 {
            return Err(TensorError::LengthMismatch {
                provided: self.data.len(),
                expected: 1,
            });
        }
        Ok(self.data[0])
    }

    /// Stacks rank-1 tensors of equal length into a matrix, one per row.
    ///
    /// # Errors
    /// Returns an error if `rows` is empty or the lengths differ.
    pub fn from_rows(rows: &[Tensor]) -> Result<Tensor> {
        let first = rows.first().ok_or(TensorError::Empty { op: "from_rows" })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "from_rows",
                    lhs: first.shape.dims().to_vec(),
                    rhs: r.shape.dims().to_vec(),
                });
            }
            data.extend_from_slice(r.as_slice());
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Vertically concatenates matrices with the same number of columns.
    ///
    /// # Errors
    /// Returns an error if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or(TensorError::Empty { op: "concat_rows" })?;
        let cols = first.cols()?;
        let mut rows = 0;
        let mut data = Vec::new();
        for p in parts {
            if p.cols()? != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_rows",
                    lhs: first.shape.dims().to_vec(),
                    rhs: p.shape.dims().to_vec(),
                });
            }
            rows += p.rows()?;
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(data, &[rows, cols])
    }

    /// Horizontally concatenates matrices with the same number of rows.
    ///
    /// # Errors
    /// Returns an error if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or(TensorError::Empty { op: "concat_cols" })?;
        let rows = first.rows()?;
        let total_cols: usize = parts.iter().map(|p| p.cols().unwrap_or(0)).sum();
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for p in parts {
                if p.rows()? != rows {
                    return Err(TensorError::ShapeMismatch {
                        op: "concat_cols",
                        lhs: first.shape.dims().to_vec(),
                        rhs: p.shape.dims().to_vec(),
                    });
                }
                let c = p.cols()?;
                data.extend_from_slice(&p.as_slice()[r * c..(r + 1) * c]);
            }
        }
        Tensor::from_vec(data, &[rows, total_cols])
    }

    /// Copies rows `[start, end)` into a new matrix.
    ///
    /// # Errors
    /// Returns an error if the range is invalid or out of bounds.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        if start > end || end > r {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_rows",
                index: end,
                bound: r,
            });
        }
        Ok(Tensor::from_parts(
            self.data[start * c..end * c].to_vec(),
            Shape::new(&[end - start, c]),
        ))
    }

    /// Copies columns `[start, end)` into a new matrix.
    ///
    /// # Errors
    /// Returns an error if the range is invalid or out of bounds.
    pub fn slice_cols(&self, start: usize, end: usize) -> Result<Tensor> {
        let (r, c) = self.shape.as_matrix()?;
        if start > end || end > c {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_cols",
                index: end,
                bound: c,
            });
        }
        let w = end - start;
        let mut data = Vec::with_capacity(r * w);
        for row in 0..r {
            data.extend_from_slice(&self.data[row * c + start..row * c + end]);
        }
        Ok(Tensor::from_parts(data, Shape::new(&[r, w])))
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const MAX: usize = 8;
        let shown: Vec<String> = self
            .data
            .iter()
            .take(MAX)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "[{}", shown.join(", "))?;
        if self.data.len() > MAX {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.rows().unwrap(), 2);
        assert_eq!(t.cols().unwrap(), 3);
        assert_eq!(t.at(1, 2).unwrap(), 6.0);
        assert_eq!(t.row(0).unwrap().as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(matches!(
            Tensor::from_vec(vec![1.0, 2.0], &[3]),
            Err(TensorError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(0, 0).unwrap(), 1.0);
        assert_eq!(i.at(0, 1).unwrap(), 0.0);
        assert_eq!(i.at(2, 2).unwrap(), 1.0);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(-100.0, 0.0, 11);
        assert_eq!(t.len(), 11);
        assert!((t.as_slice()[0] + 100.0).abs() < 1e-6);
        assert!((t.as_slice()[10]).abs() < 1e-6);
        assert!((t.as_slice()[5] + 50.0).abs() < 1e-5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let m = t.reshape(&[2, 2]).unwrap();
        assert_eq!(m.at(1, 0).unwrap(), 3.0);
        assert!(t.reshape(&[3, 2]).is_err());
    }

    #[test]
    fn set_and_item() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(0, 1, 5.0).unwrap();
        assert_eq!(t.at(0, 1).unwrap(), 5.0);
        assert!(t.set(2, 0, 1.0).is_err());
        assert_eq!(Tensor::scalar(3.5).item().unwrap(), 3.5);
        assert!(t.item().is_err());
    }

    #[test]
    fn from_rows_stacks() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let m = Tensor::from_rows(&[a, b]).unwrap();
        assert_eq!(m.shape().dims(), &[2, 2]);
        assert_eq!(m.at(1, 1).unwrap(), 4.0);
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let v = Tensor::concat_rows(&[&a, &b]).unwrap();
        assert_eq!(v.shape().dims(), &[2, 2]);
        let h = Tensor::concat_cols(&[&a, &b]).unwrap();
        assert_eq!(h.shape().dims(), &[1, 4]);
        assert_eq!(h.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_mismatch_errors() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(Tensor::concat_rows(&[&a, &b]).is_err());
        let c = Tensor::zeros(&[2, 2]);
        assert!(Tensor::concat_cols(&[&a, &c]).is_err());
    }

    #[test]
    fn slicing_rows_and_cols() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let r = t.slice_rows(1, 3).unwrap();
        assert_eq!(r.shape().dims(), &[2, 4]);
        assert_eq!(r.at(0, 0).unwrap(), 4.0);
        let c = t.slice_cols(1, 3).unwrap();
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.at(2, 1).unwrap(), 10.0);
        assert!(t.slice_rows(2, 4).is_err());
        assert!(t.slice_cols(3, 2).is_err());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[10]);
        let s = t.to_string();
        assert!(s.contains('…'));
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data), "clone must not copy");
        // Mutating the clone detaches it; the original is untouched.
        b.as_mut_slice()[0] = 9.0;
        assert!(!Arc::ptr_eq(&a.data, &b.data));
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.as_slice(), &[9.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reshape_shares_storage() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let m = t.reshape(&[2, 2]).unwrap();
        assert!(Arc::ptr_eq(&t.data, &m.data), "reshape must not copy");
    }

    #[test]
    fn into_vec_avoids_copy_when_unique() {
        let t = Tensor::from_vec(vec![5.0, 6.0], &[2]).unwrap();
        assert_eq!(t.into_vec(), vec![5.0, 6.0]);
        let shared = Tensor::ones(&[3]);
        let _keep = shared.clone();
        assert_eq!(shared.into_vec(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn tensors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
