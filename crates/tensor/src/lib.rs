//! Dense `f32` tensors for the VITAL indoor-localization reproduction.
//!
//! This crate is the numeric substrate underneath the `autograd` and
//! `nn` crates: a small, dependency-light, row-major dense tensor with the
//! operations a compact vision transformer needs — blocked matrix
//! multiplication, elementwise arithmetic with simple broadcasting,
//! reductions, softmax/log-sum-exp helpers, and seeded random initialisers.
//!
//! The design goal is *predictability over generality*: every tensor is a
//! contiguous row-major buffer plus a shape; there are no lazily-evaluated
//! views or stride tricks, so each operation is easy to audit and to
//! differentiate in the autograd layer above.
//!
//! The buffer lives behind an [`std::sync::Arc`] with **copy-on-write**
//! mutation: clones are `O(1)` reference bumps, `Tensor` is `Send + Sync`,
//! and shared weight data is read across threads with no locks — the
//! storage substrate of the `Send + Sync` model stack and the serve
//! layer's shared-weight replica workers. Mutation through
//! [`Tensor::as_mut_slice`] detaches onto a private copy only when the
//! buffer is actually shared, so freshly built tensors (every kernel
//! output) are mutated in place at the old cost and results are
//! bit-identical either way.
//!
//! # Example
//!
//! ```
//! use tensor::Tensor;
//!
//! # fn main() -> Result<(), tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

#[cfg(feature = "alloc-count")]
pub mod alloc_count;
mod error;
mod matmul;
mod named_ops;
mod ops;
mod reduce;
pub mod rng;
mod serde_impl;
mod shape;
mod tensor_impl;

pub use error::TensorError;
pub use matmul::{gemm_ex_into, gemm_ex_into_at, MatmulSpec};
pub use named_ops::{BinaryOp, UnaryOp, GELU_COEFF, SQRT_2_OVER_PI};
pub use shape::Shape;
pub use tensor_impl::Tensor;

/// Convenience alias for results returned by tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
