//! Elementwise arithmetic, scalar ops, broadcasting helpers and transposition.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn zip_same_shape(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if !self.shape().same_as(other.shape()) {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.shape().dims())
    }

    /// Elementwise addition of two tensors with identical shapes.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_same_shape(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction (`self - other`).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_same_shape(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_same_shape(other, "mul", |a, b| a * b)
    }

    /// Elementwise division (`self / other`).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_same_shape(other, "div", |a, b| a / b)
    }

    /// Adds `value` to every element.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|v| v + value)
    }

    /// Multiplies every element by `value`.
    pub fn scale(&self, value: f32) -> Tensor {
        self.map(|v| v * value)
    }

    /// Applies `f` to every element, producing a new tensor of the same shape.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.as_slice().iter().map(|&v| f(v)).collect();
        Tensor::from_vec(data, self.shape().dims()).expect("map preserves volume")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Adds a rank-1 `row` vector to every row of a matrix (bias broadcast).
    ///
    /// # Errors
    /// Returns an error if `self` is not a matrix or `row.len()` differs from
    /// the column count.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Result<Tensor> {
        let (r, c) = self.shape().as_matrix()?;
        if row.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape().dims().to_vec(),
                rhs: row.shape().dims().to_vec(),
            });
        }
        let rv = row.as_slice();
        let mut data = Vec::with_capacity(r * c);
        if c > 0 {
            for chunk in self.as_slice().chunks_exact(c) {
                for (&x, &rj) in chunk.iter().zip(rv) {
                    data.push(x + rj);
                }
            }
        }
        Tensor::from_vec(data, &[r, c])
    }

    /// Multiplies every row of a matrix elementwise by a rank-1 `row` vector.
    ///
    /// # Errors
    /// Returns an error if `self` is not a matrix or `row.len()` differs from
    /// the column count.
    pub fn mul_row_broadcast(&self, row: &Tensor) -> Result<Tensor> {
        let (r, c) = self.shape().as_matrix()?;
        if row.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "mul_row_broadcast",
                lhs: self.shape().dims().to_vec(),
                rhs: row.shape().dims().to_vec(),
            });
        }
        let rv = row.as_slice();
        let mut data = Vec::with_capacity(r * c);
        if c > 0 {
            for chunk in self.as_slice().chunks_exact(c) {
                for (&x, &rj) in chunk.iter().zip(rv) {
                    data.push(x * rj);
                }
            }
        }
        Tensor::from_vec(data, &[r, c])
    }

    /// Transposes a matrix (rank-1 tensors become a column matrix).
    ///
    /// # Errors
    /// Returns an error for rank-0 or rank>2 tensors.
    pub fn transpose(&self) -> Result<Tensor> {
        let (r, c) = self.shape().as_matrix()?;
        let src = self.as_slice();
        let mut data = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = src[i * c + j];
            }
        }
        Ok(Tensor::from_vec(data, &[c, r]).expect("transpose preserves volume"))
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise natural exponent (runs on the dispatched SIMD kernel).
    pub fn exp(&self) -> Tensor {
        self.apply(crate::UnaryOp::Exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise power.
    pub fn powi(&self, n: i32) -> Tensor {
        self.map(|v| v.powi(n))
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Returns `true` if every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }

    /// Squared Euclidean distance between two tensors of identical shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn squared_distance(&self, other: &Tensor) -> Result<f32> {
        if !self.shape().same_as(other.shape()) {
            return Err(TensorError::ShapeMismatch {
                op: "squared_distance",
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Euclidean distance between two tensors of identical shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn distance(&self, other: &Tensor) -> Result<f32> {
        Ok(self.squared_distance(other)?.sqrt())
    }

    /// Flattens the tensor into rank 1, preserving row-major order.
    pub fn flatten(&self) -> Tensor {
        Tensor::from_vec(self.as_slice().to_vec(), &[self.len()]).expect("flatten keeps volume")
    }

    /// Converts a rank-1 tensor into a `1 × n` matrix view (copy).
    pub fn as_row_matrix(&self) -> Tensor {
        Tensor::from_vec(self.as_slice().to_vec(), &[1, self.len()])
            .expect("row matrix keeps volume")
    }

    /// Builds a matrix of shape `dims` by repeating (tiling) a rank-1 vector
    /// row-wise, truncating or cycling as needed.
    ///
    /// Used by the DAM replication stage which tiles the 1-D fingerprint into
    /// an `R × R` image.
    ///
    /// # Errors
    /// Returns [`TensorError::Empty`] if `self` is empty.
    pub fn tile_rows(&self, rows: usize) -> Result<Tensor> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "tile_rows" });
        }
        let cols = self.len();
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            data.extend_from_slice(self.as_slice());
        }
        Ok(Tensor::from_vec(data, &[rows, cols]).expect("tile volume"))
    }

    /// Vertically repeats a `[rows, cols]` matrix `times` times, producing a
    /// `[times * rows, cols]` matrix.
    ///
    /// The inverse reduction is [`Tensor::sum_row_blocks`]; together they
    /// implement broadcasting a per-sample tensor across a stacked batch.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix or is empty.
    pub fn repeat_rows(&self, times: usize) -> Result<Tensor> {
        let (r, c) = self.shape().as_matrix()?;
        if self.is_empty() {
            return Err(TensorError::Empty { op: "repeat_rows" });
        }
        let mut data = Vec::with_capacity(times * r * c);
        for _ in 0..times {
            data.extend_from_slice(self.as_slice());
        }
        Tensor::from_vec(data, &[times * r, c])
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn repeat_rows_tiles_matrix_blocks() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = a.repeat_rows(3).unwrap();
        assert_eq!(r.shape().dims(), &[6, 2]);
        assert_eq!(&r.as_slice()[..4], a.as_slice());
        assert_eq!(&r.as_slice()[8..], a.as_slice());
        // Round trip with the block-sum reduction.
        assert_eq!(r.sum_row_blocks(2).unwrap(), a.scale(3.0));
        assert!(Tensor::zeros(&[0, 2]).repeat_rows(2).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
    }

    #[test]
    fn arithmetic_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn scalar_ops_and_map() {
        let a = t(&[1.0, -2.0], &[2]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, -1.0]);
        assert_eq!(a.scale(-2.0).as_slice(), &[-2.0, 4.0]);
        assert_eq!(a.abs().as_slice(), &[1.0, 2.0]);
        let mut b = a.clone();
        b.map_inplace(|v| v * v);
        assert_eq!(b.as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn row_broadcasts() {
        let m = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t(&[10.0, 20.0], &[2]);
        assert_eq!(
            m.add_row_broadcast(&r).unwrap().as_slice(),
            &[11.0, 22.0, 13.0, 24.0]
        );
        assert_eq!(
            m.mul_row_broadcast(&r).unwrap().as_slice(),
            &[10.0, 40.0, 30.0, 80.0]
        );
        let bad = t(&[1.0, 2.0, 3.0], &[3]);
        assert!(m.add_row_broadcast(&bad).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let mt = m.transpose().unwrap();
        assert_eq!(mt.shape().dims(), &[3, 2]);
        assert_eq!(mt.at(2, 1).unwrap(), 6.0);
        assert_eq!(mt.transpose().unwrap(), m);
    }

    #[test]
    fn distances() {
        let a = t(&[0.0, 3.0], &[2]);
        let b = t(&[4.0, 0.0], &[2]);
        assert_eq!(a.squared_distance(&b).unwrap(), 25.0);
        assert_eq!(a.distance(&b).unwrap(), 5.0);
    }

    #[test]
    fn clamp_and_finite() {
        let a = t(&[-200.0, 5.0, f32::NAN], &[3]);
        let c = a.clamp(-100.0, 0.0);
        assert_eq!(c.as_slice()[0], -100.0);
        assert_eq!(c.as_slice()[1], 0.0);
        assert!(!a.all_finite());
        assert!(t(&[1.0], &[1]).all_finite());
    }

    #[test]
    fn tile_rows_replicates() {
        let v = t(&[1.0, 2.0, 3.0], &[3]);
        let m = v.tile_rows(2).unwrap();
        assert_eq!(m.shape().dims(), &[2, 3]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(Tensor::zeros(&[0]).tile_rows(2).is_err());
    }

    #[test]
    fn flatten_and_row_matrix() {
        let m = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(m.flatten().shape().dims(), &[4]);
        let v = t(&[1.0, 2.0], &[2]);
        assert_eq!(v.as_row_matrix().shape().dims(), &[1, 2]);
    }

    #[test]
    fn row_broadcasts_accept_zero_column_matrices() {
        let empty = Tensor::from_vec(vec![], &[2, 0]).unwrap();
        let row = Tensor::from_vec(vec![], &[0]).unwrap();
        assert_eq!(
            empty.add_row_broadcast(&row).unwrap().shape().dims(),
            &[2, 0]
        );
        assert_eq!(
            empty.mul_row_broadcast(&row).unwrap().shape().dims(),
            &[2, 0]
        );
    }
}
