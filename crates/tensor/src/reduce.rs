//! Reductions, statistics and normalisation helpers.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Population variance of all elements (`0.0` for an empty tensor).
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.as_slice()
            .iter()
            .map(|v| (v - m) * (v - m))
            .sum::<f32>()
            / self.len() as f32
    }

    /// Population standard deviation of all elements.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Maximum element.
    ///
    /// # Errors
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .ok_or(TensorError::Empty { op: "max" })
    }

    /// Minimum element.
    ///
    /// # Errors
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn min(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .ok_or(TensorError::Empty { op: "min" })
    }

    /// Index of the maximum element (first occurrence).
    ///
    /// # Errors
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "argmax" });
        }
        let mut best = 0;
        for (i, v) in self.as_slice().iter().enumerate() {
            if *v > self.as_slice()[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a matrix, one index per row.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix or has zero columns.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let (r, c) = self.shape().as_matrix()?;
        if c == 0 {
            return Err(TensorError::Empty { op: "argmax_rows" });
        }
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.as_slice()[i * c..(i + 1) * c];
            let mut best = 0;
            for (j, v) in row.iter().enumerate() {
                if *v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Sum along rows of a matrix, returning a rank-1 tensor of length `cols`.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let (_, c) = self.shape().as_matrix()?;
        let mut out = vec![0.0; c];
        if c > 0 {
            for chunk in self.as_slice().chunks_exact(c) {
                for (acc, &v) in out.iter_mut().zip(chunk) {
                    *acc += v;
                }
            }
        }
        Tensor::from_vec(out, &[c])
    }

    /// Mean along rows of a matrix, returning a rank-1 tensor of length `cols`.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix or has zero rows.
    pub fn mean_rows(&self) -> Result<Tensor> {
        let (r, _) = self.shape().as_matrix()?;
        if r == 0 {
            return Err(TensorError::Empty { op: "mean_rows" });
        }
        Ok(self.sum_rows()?.scale(1.0 / r as f32))
    }

    /// Sums consecutive blocks of `block_rows` rows of a
    /// `[blocks * block_rows, cols]` matrix elementwise, returning a
    /// `[block_rows, cols]` matrix.
    ///
    /// This is the reduction behind batched (stacked-sample) execution: the
    /// gradient of a per-sample tensor tiled across a batch is the block sum
    /// of the stacked gradient.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix, `block_rows` is zero,
    /// or the row count is not a multiple of `block_rows`.
    pub fn sum_row_blocks(&self, block_rows: usize) -> Result<Tensor> {
        let (r, c) = self.shape().as_matrix()?;
        if block_rows == 0 || !r.is_multiple_of(block_rows) {
            return Err(TensorError::ShapeMismatch {
                op: "sum_row_blocks (rows must be a multiple of block_rows)",
                lhs: self.shape().dims().to_vec(),
                rhs: vec![block_rows],
            });
        }
        let mut out = vec![0.0f32; block_rows * c];
        for block in self.as_slice().chunks_exact(block_rows * c) {
            for (acc, &v) in out.iter_mut().zip(block) {
                *acc += v;
            }
        }
        Tensor::from_vec(out, &[block_rows, c])
    }

    /// Means each consecutive block of `block_rows` rows down to a single
    /// row: a `[blocks * block_rows, cols]` matrix becomes `[blocks, cols]`.
    ///
    /// Batched mean pooling: with one block per sample this collapses every
    /// sample's patch rows to its pooled feature row in a single pass.
    ///
    /// # Errors
    /// Returns an error if the tensor is not a matrix, `block_rows` is zero,
    /// or the row count is not a multiple of `block_rows`.
    pub fn mean_row_blocks(&self, block_rows: usize) -> Result<Tensor> {
        let (r, c) = self.shape().as_matrix()?;
        if block_rows == 0 || !r.is_multiple_of(block_rows) {
            return Err(TensorError::ShapeMismatch {
                op: "mean_row_blocks (rows must be a multiple of block_rows)",
                lhs: self.shape().dims().to_vec(),
                rhs: vec![block_rows],
            });
        }
        let blocks = r / block_rows;
        let scale = 1.0 / block_rows as f32;
        let mut out = vec![0.0f32; blocks * c];
        for (dst, block) in out
            .chunks_exact_mut(c)
            .zip(self.as_slice().chunks_exact(block_rows * c))
        {
            for row in block.chunks_exact(c) {
                for (acc, &v) in dst.iter_mut().zip(row) {
                    *acc += v;
                }
            }
            for acc in dst.iter_mut() {
                *acc *= scale;
            }
        }
        Tensor::from_vec(out, &[blocks, c])
    }

    /// Numerically stable softmax along the last axis of a matrix (per row).
    ///
    /// Rank-1 tensors are treated as a single row. Runs on the
    /// runtime-dispatched three-pass SIMD kernel ([`simd::softmax_rows`]);
    /// results are bit-identical across the deterministic dispatch levels.
    ///
    /// # Errors
    /// Returns an error for rank-0 or rank>2 tensors.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        let (_, c) = self.shape().as_matrix()?;
        let mut out = self.as_slice().to_vec();
        simd::softmax_rows(&mut out, c);
        Tensor::from_vec(out, self.shape().dims())
    }

    /// Per-row layer normalization of a matrix:
    /// `y = (x − mean) · istd · γ[j] + β[j]` with `istd = 1/√(var + eps)`
    /// over each row's population statistics.
    ///
    /// Runs on the runtime-dispatched single-sweep SIMD kernel
    /// ([`simd::layer_norm_rows`]).
    ///
    /// # Errors
    /// Returns an error if `self` is not a matrix or `gamma`/`beta` do not
    /// have exactly one element per column.
    pub fn layer_norm_rows(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Result<Tensor> {
        let (_, c) = self.layer_norm_check(gamma, beta)?;
        let mut out = self.as_slice().to_vec();
        simd::layer_norm_rows(&mut out, c, gamma.as_slice(), beta.as_slice(), eps);
        Tensor::from_vec(out, self.shape().dims())
    }

    /// [`Tensor::layer_norm_rows`] that also returns the per-row
    /// `(mean, 1/std)` the kernel computed — the training backward pass
    /// reconstructs `x̂` from them.
    ///
    /// # Errors
    /// Same conditions as [`Tensor::layer_norm_rows`].
    pub fn layer_norm_rows_stats(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> Result<(Tensor, Vec<f32>, Vec<f32>)> {
        let (r, c) = self.layer_norm_check(gamma, beta)?;
        let mut out = self.as_slice().to_vec();
        let mut means = vec![0.0f32; r];
        let mut inv_stds = vec![0.0f32; r];
        simd::layer_norm_rows_stats(
            &mut out,
            c,
            gamma.as_slice(),
            beta.as_slice(),
            eps,
            &mut means,
            &mut inv_stds,
        );
        Ok((Tensor::from_vec(out, self.shape().dims())?, means, inv_stds))
    }

    fn layer_norm_check(&self, gamma: &Tensor, beta: &Tensor) -> Result<(usize, usize)> {
        let (r, c) = self.shape().as_matrix()?;
        if gamma.len() != c || beta.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm_rows (gamma/beta must have one element per column)",
                lhs: self.shape().dims().to_vec(),
                rhs: vec![gamma.len(), beta.len()],
            });
        }
        Ok((r, c))
    }

    /// Numerically stable log-sum-exp per row of a matrix.
    ///
    /// # Errors
    /// Returns an error for rank-0 or rank>2 tensors.
    pub fn log_sum_exp_rows(&self) -> Result<Tensor> {
        let (r, c) = self.shape().as_matrix()?;
        let mut out = vec![0.0; r];
        if c > 0 {
            for (out_i, row) in out.iter_mut().zip(self.as_slice().chunks_exact(c)) {
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let s: f32 = row.iter().map(|v| (v - max).exp()).sum();
                *out_i = max + s.ln();
            }
        } else {
            // log-sum-exp over an empty row is log(0) = -inf.
            out.fill(f32::NEG_INFINITY);
        }
        Tensor::from_vec(out, &[r])
    }

    /// Standardises all elements to zero mean and unit variance.
    ///
    /// If the standard deviation is (near) zero the tensor is only centred.
    pub fn standardize(&self) -> Tensor {
        let m = self.mean();
        let s = self.std();
        if s < 1e-8 {
            self.map(|v| v - m)
        } else {
            self.map(|v| (v - m) / s)
        }
    }

    /// Rescales all elements linearly into `[0, 1]`.
    ///
    /// A constant tensor maps to all zeros.
    pub fn min_max_normalize(&self) -> Tensor {
        let lo = self.min().unwrap_or(0.0);
        let hi = self.max().unwrap_or(0.0);
        let range = hi - lo;
        if range.abs() < 1e-12 {
            self.map(|_| 0.0)
        } else {
            self.map(|v| (v - lo) / range)
        }
    }

    /// Frobenius / L2 norm of the tensor.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn sum_row_blocks_adds_blocks_elementwise() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[4, 2]);
        let s = a.sum_row_blocks(2).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        // One block is the identity.
        assert_eq!(a.sum_row_blocks(4).unwrap(), a);
        assert!(a.sum_row_blocks(3).is_err());
        assert!(a.sum_row_blocks(0).is_err());
    }

    #[test]
    fn mean_row_blocks_pools_each_block() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[4, 2]);
        let m = a.mean_row_blocks(2).unwrap();
        assert_eq!(m.shape().dims(), &[2, 2]);
        assert_eq!(m.as_slice(), &[2.0, 3.0, 20.0, 30.0]);
        // Pooling the whole matrix matches mean_rows.
        let whole = a.mean_row_blocks(4).unwrap();
        assert_eq!(whole.as_slice(), a.mean_rows().unwrap().as_slice());
        assert!(a.mean_row_blocks(3).is_err());
    }

    #[test]
    fn basic_statistics() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.variance() - 1.25).abs() < 1e-6);
        assert!((a.std() - 1.118034).abs() < 1e-5);
        assert_eq!(a.max().unwrap(), 4.0);
        assert_eq!(a.min().unwrap(), 1.0);
    }

    #[test]
    fn empty_tensor_statistics() {
        let e = Tensor::zeros(&[0]);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert!(e.max().is_err());
        assert!(e.argmax().is_err());
    }

    #[test]
    fn argmax_variants() {
        let a = t(&[0.1, 0.7, 0.2], &[3]);
        assert_eq!(a.argmax().unwrap(), 1);
        let m = t(&[0.1, 0.9, 0.8, 0.2], &[2, 2]);
        assert_eq!(m.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn row_reductions() {
        let m = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(m.sum_rows().unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(m.mean_rows().unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let m = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = m.softmax_rows().unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.row(i).unwrap().sum();
            assert!((row_sum - 1.0).abs() < 1e-6);
        }
        // Larger logit -> larger probability
        assert!(s.at(0, 2).unwrap() > s.at(0, 0).unwrap());
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = t(&[1000.0, 1001.0, 1002.0], &[3]);
        let s = a.softmax_rows().unwrap();
        assert!(s.all_finite());
        let b = t(&[0.0, 1.0, 2.0], &[3]).softmax_rows().unwrap();
        for (x, y) in s.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_rows_normalizes_each_row() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let gamma = t(&[1.0, 1.0, 1.0], &[3]);
        let beta = t(&[0.0, 0.0, 0.0], &[3]);
        let y = m.layer_norm_rows(&gamma, &beta, 1e-5).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        for i in 0..2 {
            let row = y.row(i).unwrap();
            assert!(row.mean().abs() < 1e-5);
            assert!((row.std() - 1.0).abs() < 1e-3);
        }
        let (y2, means, istds) = m.layer_norm_rows_stats(&gamma, &beta, 1e-5).unwrap();
        assert_eq!(y, y2);
        assert!((means[0] - 2.0).abs() < 1e-6);
        assert!((means[1] - 5.0).abs() < 1e-6);
        assert!(istds.iter().all(|v| *v > 0.0));
        // Scale/shift participate: gamma=2, beta=1 doubles and shifts.
        let g2 = t(&[2.0, 2.0, 2.0], &[3]);
        let b1 = t(&[1.0, 1.0, 1.0], &[3]);
        let z = m.layer_norm_rows(&g2, &b1, 1e-5).unwrap();
        for (zi, yi) in z.as_slice().iter().zip(y.as_slice()) {
            assert!((zi - (2.0 * yi + 1.0)).abs() < 1e-5);
        }
        // Mismatched gamma/beta lengths are rejected.
        assert!(m.layer_norm_rows(&t(&[1.0], &[1]), &beta, 1e-5).is_err());
    }

    #[test]
    fn log_sum_exp_matches_direct() {
        let m = t(&[0.5, -0.5, 2.0, 1.0, 1.0, 1.0], &[2, 3]);
        let lse = m.log_sum_exp_rows().unwrap();
        let direct0 = (0.5f32.exp() + (-0.5f32).exp() + 2.0f32.exp()).ln();
        assert!((lse.as_slice()[0] - direct0).abs() < 1e-5);
    }

    #[test]
    fn standardize_and_minmax() {
        let a = t(&[-90.0, -70.0, -50.0], &[3]);
        let s = a.standardize();
        assert!(s.mean().abs() < 1e-6);
        assert!((s.std() - 1.0).abs() < 1e-5);
        let n = a.min_max_normalize();
        assert_eq!(n.min().unwrap(), 0.0);
        assert_eq!(n.max().unwrap(), 1.0);
        // Constant tensor maps to zeros.
        let c = Tensor::full(&[3], 4.0);
        assert_eq!(c.min_max_normalize().as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn norm_of_pythagorean_vector() {
        let a = t(&[3.0, 4.0], &[2]);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn row_reductions_accept_zero_column_matrices() {
        let empty = Tensor::from_vec(vec![], &[2, 0]).unwrap();
        assert_eq!(empty.sum_rows().unwrap().shape().dims(), &[0]);
        let lse = empty.log_sum_exp_rows().unwrap();
        assert_eq!(lse.shape().dims(), &[2]);
        assert!(lse.as_slice().iter().all(|v| *v == f32::NEG_INFINITY));
    }
}
