//! Seeded random-number utilities and tensor initialisers.
//!
//! All stochastic components of the workspace (weight initialisation, DAM
//! dropout / Gaussian noise, the RF shadowing model) consume a
//! [`SeededRng`] so that every experiment is exactly reproducible from a
//! single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Tensor;

/// A deterministic random number generator with convenience samplers.
///
/// Wraps [`rand::rngs::StdRng`] and adds the Gaussian / Xavier / He samplers
/// used by the neural-network and radio-propagation crates.
///
/// # Example
/// ```
/// use tensor::rng::SeededRng;
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// subsystem (device model, building, layer) its own stream.
    pub fn fork(&mut self) -> SeededRng {
        SeededRng::new(self.inner.gen::<u64>())
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller: two uniforms -> one normal (the second is discarded to
        // keep the generator stateless w.r.t. caching).
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, values: &mut [T]) {
        for i in (1..values.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            values.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (k clamped to n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data = (0..n).map(|_| self.uniform(lo, hi)).collect();
        Tensor::from_vec(data, dims).expect("generated data matches requested shape")
    }

    /// Tensor of i.i.d. normal samples.
    pub fn normal_tensor(&mut self, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data = (0..n).map(|_| self.normal(mean, std)).collect();
        Tensor::from_vec(data, dims).expect("generated data matches requested shape")
    }

    /// Xavier/Glorot-uniform initialised weight matrix of shape `[fan_in, fan_out]`.
    pub fn xavier_uniform(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform_tensor(&[fan_in, fan_out], -limit, limit)
    }

    /// He-normal initialised weight matrix of shape `[fan_in, fan_out]`
    /// (preferred ahead of ReLU activations).
    pub fn he_normal(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        self.normal_tensor(&[fan_in, fan_out], 0.0, std)
    }

    /// Binary dropout mask of the given shape: elements are `0.0` with
    /// probability `rate`, otherwise `1.0 / (1.0 - rate)` (inverted dropout).
    pub fn dropout_mask(&mut self, dims: &[usize], rate: f32) -> Tensor {
        let rate = rate.clamp(0.0, 0.999);
        let keep_scale = 1.0 / (1.0 - rate);
        let n: usize = dims.iter().product();
        let data = (0..n)
            .map(|_| {
                if self.bernoulli(rate as f64) {
                    0.0
                } else {
                    keep_scale
                }
            })
            .collect();
        Tensor::from_vec(data, dims).expect("generated data matches requested shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_with_same_seed() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let va: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(3);
        let t = rng.normal_tensor(&[5000], 2.0, 0.5);
        assert!((t.mean() - 2.0).abs() < 0.05);
        assert!((t.std() - 0.5).abs() < 0.05);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SeededRng::new(4);
        let t = rng.uniform_tensor(&[1000], -3.0, -1.0);
        assert!(t.min().unwrap() >= -3.0);
        assert!(t.max().unwrap() < -1.0);
    }

    #[test]
    fn xavier_limit() {
        let mut rng = SeededRng::new(5);
        let w = rng.xavier_uniform(100, 200);
        let limit = (6.0f32 / 300.0).sqrt();
        assert!(w.max().unwrap() <= limit);
        assert!(w.min().unwrap() >= -limit);
        assert_eq!(w.shape().dims(), &[100, 200]);
    }

    #[test]
    fn dropout_mask_rate_and_scale() {
        let mut rng = SeededRng::new(6);
        let mask = rng.dropout_mask(&[10_000], 0.3);
        let zeros = mask.as_slice().iter().filter(|v| **v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropout fraction {frac}");
        let nonzero = mask.as_slice().iter().find(|v| **v != 0.0).unwrap();
        assert!((nonzero - 1.0 / 0.7).abs() < 1e-5);
    }

    #[test]
    fn shuffle_and_sample_indices() {
        let mut rng = SeededRng::new(8);
        let idx = rng.sample_indices(10, 4);
        assert_eq!(idx.len(), 4);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 10));
        // k > n clamps
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SeededRng::new(9);
        let mut child = a.fork();
        // The parent stream keeps advancing after the fork without panicking
        // and the child is deterministic given the parent's state.
        let _ = a.uniform(0.0, 1.0);
        let v1 = child.uniform(0.0, 1.0);
        let mut b = SeededRng::new(9);
        let mut child_b = b.fork();
        assert_eq!(v1, child_b.uniform(0.0, 1.0));
    }
}
