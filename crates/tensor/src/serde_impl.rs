//! Hand-rolled `Serialize`/`Deserialize` impls for [`Shape`] and
//! [`Tensor`] — the foundation of the model-persistence layer.
//!
//! Following the rten idiom, the tensor serializes as a two-field struct
//! (`shape`, then the contiguous row-major `data`), and deserialization
//! *validates* on load: the shape's volume is recomputed with overflow
//! checks and must match the element count exactly, so corrupt or
//! truncated checkpoints surface as typed errors instead of panics or
//! silently mis-shaped tensors.
//!
//! `f32` elements travel as raw IEEE-754 bit patterns (the `binio` format
//! guarantees this), so round-trips are **bit-exact** — including NaN
//! payloads and infinities.

use serde::de::{Deserialize, Deserializer};
use serde::ser::{Serialize, Serializer};

use crate::{Shape, Tensor};

impl Serialize for Shape {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_seq(self.dims().len())?;
        for &dim in self.dims() {
            serializer.serialize_usize(dim)?;
        }
        Ok(())
    }
}

impl Deserialize for Shape {
    fn deserialize<D: Deserializer + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        let rank = deserializer.deserialize_seq()?;
        let mut dims = Vec::with_capacity(deserializer.seq_capacity_hint(rank));
        for _ in 0..rank {
            dims.push(deserializer.deserialize_usize()?);
        }
        Ok(Shape::new(&dims))
    }
}

impl Serialize for Tensor {
    fn serialize<S: Serializer + ?Sized>(&self, serializer: &mut S) -> Result<(), S::Error> {
        serializer.serialize_struct("Tensor", 2)?;
        self.shape().serialize(serializer)?;
        serializer.serialize_seq(self.len())?;
        for &v in self.as_slice() {
            serializer.serialize_f32(v)?;
        }
        Ok(())
    }
}

impl Deserialize for Tensor {
    fn deserialize<D: Deserializer + ?Sized>(deserializer: &mut D) -> Result<Self, D::Error> {
        deserializer.deserialize_struct("Tensor", 2)?;
        let shape = Shape::deserialize(deserializer)?;
        // Recompute the volume with overflow checking — a corrupt shape
        // like [u64::MAX, 2] must not wrap into a plausible size.
        let volume = shape
            .dims()
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| {
                deserializer.invalid_data(&format!(
                    "tensor shape {:?} volume overflows usize",
                    shape.dims()
                ))
            })?;
        let len = deserializer.deserialize_seq()?;
        if len != volume {
            return Err(deserializer.invalid_data(&format!(
                "tensor data length {len} does not match shape {:?} volume {volume}",
                shape.dims()
            )));
        }
        let mut data = Vec::with_capacity(deserializer.seq_capacity_hint(len));
        for _ in 0..len {
            data.push(deserializer.deserialize_f32()?);
        }
        Tensor::from_vec(data, shape.dims()).map_err(|e| deserializer.invalid_data(&e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializer that records the call sequence — verifies the wire
    /// layout contract (struct header, shape seq, data seq) without
    /// depending on the `binio` crate (which depends on us for tests).
    #[derive(Default)]
    struct TraceSerializer {
        trace: Vec<String>,
    }

    impl serde::ser::Serializer for TraceSerializer {
        type Error = ();
        fn serialize_bool(&mut self, v: bool) -> Result<(), ()> {
            self.trace.push(format!("bool:{v}"));
            Ok(())
        }
        fn serialize_u8(&mut self, v: u8) -> Result<(), ()> {
            self.trace.push(format!("u8:{v}"));
            Ok(())
        }
        fn serialize_u16(&mut self, v: u16) -> Result<(), ()> {
            self.trace.push(format!("u16:{v}"));
            Ok(())
        }
        fn serialize_u32(&mut self, v: u32) -> Result<(), ()> {
            self.trace.push(format!("u32:{v}"));
            Ok(())
        }
        fn serialize_u64(&mut self, v: u64) -> Result<(), ()> {
            self.trace.push(format!("u64:{v}"));
            Ok(())
        }
        fn serialize_i64(&mut self, v: i64) -> Result<(), ()> {
            self.trace.push(format!("i64:{v}"));
            Ok(())
        }
        fn serialize_f32(&mut self, v: f32) -> Result<(), ()> {
            self.trace.push(format!("f32:{v}"));
            Ok(())
        }
        fn serialize_f64(&mut self, v: f64) -> Result<(), ()> {
            self.trace.push(format!("f64:{v}"));
            Ok(())
        }
        fn serialize_str(&mut self, v: &str) -> Result<(), ()> {
            self.trace.push(format!("str:{v}"));
            Ok(())
        }
        fn serialize_seq(&mut self, len: usize) -> Result<(), ()> {
            self.trace.push(format!("seq:{len}"));
            Ok(())
        }
        fn serialize_struct(&mut self, name: &'static str, fields: usize) -> Result<(), ()> {
            self.trace.push(format!("struct:{name}:{fields}"));
            Ok(())
        }
        fn serialize_variant(&mut self, name: &'static str, index: u32) -> Result<(), ()> {
            self.trace.push(format!("variant:{name}:{index}"));
            Ok(())
        }
    }

    #[test]
    fn tensor_wire_layout_is_shape_then_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let mut s = TraceSerializer::default();
        t.serialize(&mut s).unwrap();
        assert_eq!(
            s.trace,
            vec![
                "struct:Tensor:2",
                "seq:2",
                "u64:2",
                "u64:3",
                "seq:6",
                "f32:1",
                "f32:2",
                "f32:3",
                "f32:4",
                "f32:5",
                "f32:6"
            ]
        );
    }

    #[test]
    fn shape_serializes_as_dim_sequence() {
        let mut s = TraceSerializer::default();
        Shape::new(&[4, 1, 7]).serialize(&mut s).unwrap();
        assert_eq!(s.trace, vec!["seq:3", "u64:4", "u64:1", "u64:7"]);
    }
}
