//! Named elementwise operations shared by the eager API and fused kernels.
//!
//! Historically the hot inference paths applied activations through opaque
//! closures (`x.map(|v| …)`), which a compiler — or a static analyzer —
//! cannot see through. [`UnaryOp`] and [`BinaryOp`] name every elementwise
//! operation the inference stack uses, so the eager path
//! ([`Tensor::apply`], [`Tensor::binary`]) and the `graph` crate's fused
//! single-pass kernels evaluate *the same scalar function* and stay
//! bit-identical by construction.
//!
//! The scalar formulas here are the single source of truth: the `autograd`
//! activation forwards delegate to [`UnaryOp::eval`], and the graph
//! executor folds chains of these ops into one pass over a buffer.

use crate::{Result, Tensor};

pub use simd::{GELU_COEFF, SQRT_2_OVER_PI};

/// A named elementwise unary operation.
///
/// Every variant is a pure scalar function evaluated by [`UnaryOp::eval`];
/// tensors apply it elementwise via [`Tensor::apply`] /
/// [`Tensor::apply_inplace`], and the graph compiler fuses chains of these
/// into single-pass kernels with identical per-element arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnaryOp {
    /// `max(x, 0)`.
    Relu,
    /// Tanh-approximation GELU:
    /// `0.5 · x · (1 + tanh(√(2/π) · (x + 0.044715 · x³)))`.
    Gelu,
    /// Logistic sigmoid `1 / (1 + e^(−x))`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Natural exponent `e^x`.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// `x + c` for a fixed scalar `c`.
    AddScalar(f32),
    /// `x · c` for a fixed scalar `c`.
    MulScalar(f32),
}

impl UnaryOp {
    /// Evaluates the operation on one scalar.
    ///
    /// This is the shared definition both execution modes use; the
    /// transcendental variants delegate to [`simd::scalar`], which is the
    /// *same generic kernel code* the vectorized sweeps run, so a
    /// per-element call and a [`simd::apply_act`] sweep agree
    /// bit-for-bit at the deterministic dispatch levels.
    #[inline]
    pub fn eval(self, x: f32) -> f32 {
        match self {
            UnaryOp::Relu => simd::scalar::relu(x),
            UnaryOp::Gelu => simd::scalar::gelu(x),
            UnaryOp::Sigmoid => simd::scalar::sigmoid(x),
            UnaryOp::Tanh => simd::scalar::tanh(x),
            UnaryOp::Exp => simd::scalar::exp(x),
            UnaryOp::Ln => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::AddScalar(c) => x + c,
            UnaryOp::MulScalar(c) => x * c,
        }
    }

    /// The SIMD activation this op vectorizes to, if any.
    ///
    /// The remaining variants are exact single-instruction operations
    /// (or trivially auto-vectorized add/mul) that stay as plain loops.
    #[inline]
    pub fn vector_act(self) -> Option<simd::Act> {
        match self {
            UnaryOp::Relu => Some(simd::Act::Relu),
            UnaryOp::Gelu => Some(simd::Act::Gelu),
            UnaryOp::Sigmoid => Some(simd::Act::Sigmoid),
            UnaryOp::Tanh => Some(simd::Act::Tanh),
            UnaryOp::Exp => Some(simd::Act::Exp),
            _ => None,
        }
    }
}

/// A named elementwise binary operation between same-shape tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `a + b`.
    Add,
    /// `a − b`.
    Sub,
    /// `a · b`.
    Mul,
    /// `a / b`.
    Div,
}

impl BinaryOp {
    /// Evaluates the operation on one pair of scalars (`a` is the
    /// left-hand operand).
    #[inline]
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
        }
    }
}

impl Tensor {
    /// Applies a named unary operation elementwise, returning a new tensor.
    ///
    /// Semantically `self.map(|v| op.eval(v))`, but the transcendental
    /// variants run through the runtime-dispatched SIMD kernels
    /// ([`simd::apply_act`]); at the deterministic dispatch levels the
    /// result is bit-identical to the per-element form.
    pub fn apply(&self, op: UnaryOp) -> Tensor {
        let mut out = self.clone();
        out.apply_inplace(op);
        out
    }

    /// Applies a named unary operation elementwise in place.
    pub fn apply_inplace(&mut self, op: UnaryOp) {
        if let Some(act) = op.vector_act() {
            simd::apply_act(act, self.as_mut_slice());
        } else {
            self.map_inplace(|v| op.eval(v));
        }
    }

    /// Applies a named binary operation elementwise against a same-shape
    /// tensor (`self` is the left-hand operand).
    ///
    /// # Errors
    /// Returns [`crate::TensorError::ShapeMismatch`] if the shapes differ.
    pub fn binary(&self, other: &Tensor, op: BinaryOp) -> Result<Tensor> {
        match op {
            BinaryOp::Add => self.add(other),
            BinaryOp::Sub => self.sub(other),
            BinaryOp::Mul => self.mul(other),
            BinaryOp::Div => self.div(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_matches_per_element_eval() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]).unwrap();
        // Vectorized sweeps and per-element eval share one generic kernel
        // and are bit-identical at the deterministic dispatch levels; the
        // opt-in FMA level fuses multiply–adds and is only ULP-bounded.
        for op in [
            UnaryOp::Relu,
            UnaryOp::Gelu,
            UnaryOp::Sigmoid,
            UnaryOp::Tanh,
            UnaryOp::Exp,
        ] {
            let swept = x.apply(op);
            let per_elem = x.map(|v| op.eval(v));
            if simd::active_level() <= simd::Level::Avx2 {
                assert_eq!(swept, per_elem, "{op:?} sweep vs per-element");
            } else {
                for (a, b) in swept.as_slice().iter().zip(per_elem.as_slice()) {
                    assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{op:?}");
                }
            }
        }
        assert_eq!(x.apply(UnaryOp::Abs), x.map(f32::abs));
        assert_eq!(x.apply(UnaryOp::AddScalar(1.5)), x.add_scalar(1.5));
        assert_eq!(x.apply(UnaryOp::MulScalar(-3.0)), x.scale(-3.0));
    }

    #[test]
    fn transcendentals_track_libm() {
        for v in [-4.0f32, -1.0, -0.3, 0.0, 0.3, 1.0, 4.0] {
            assert!((UnaryOp::Exp.eval(v) - v.exp()).abs() <= 1e-6 * v.exp());
            assert!((UnaryOp::Tanh.eval(v) - v.tanh()).abs() <= 5e-7);
            assert!((UnaryOp::Sigmoid.eval(v) - 1.0 / (1.0 + (-v).exp())).abs() <= 5e-7);
        }
    }

    #[test]
    fn gelu_formula_is_the_tanh_approximation() {
        let x = 0.5f32;
        let inner = SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x);
        let want = 0.5 * x * (1.0 + inner.tanh());
        assert!((UnaryOp::Gelu.eval(x) - want).abs() <= 5e-7);
        assert_eq!(UnaryOp::Gelu.eval(0.0), 0.0);
    }

    #[test]
    fn apply_inplace_matches_apply() {
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0], &[3]).unwrap();
        let mut y = x.clone();
        y.apply_inplace(UnaryOp::Abs);
        assert_eq!(y, x.apply(UnaryOp::Abs));
    }

    #[test]
    fn binary_dispatches_to_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 4.0, 9.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(a.binary(&b, BinaryOp::Add).unwrap(), a.add(&b).unwrap());
        assert_eq!(a.binary(&b, BinaryOp::Sub).unwrap(), a.sub(&b).unwrap());
        assert_eq!(a.binary(&b, BinaryOp::Mul).unwrap(), a.mul(&b).unwrap());
        assert_eq!(a.binary(&b, BinaryOp::Div).unwrap(), a.div(&b).unwrap());
        assert!(a.binary(&Tensor::zeros(&[2]), BinaryOp::Add).is_err());
    }
}
