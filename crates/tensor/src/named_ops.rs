//! Named elementwise operations shared by the eager API and fused kernels.
//!
//! Historically the hot inference paths applied activations through opaque
//! closures (`x.map(|v| …)`), which a compiler — or a static analyzer —
//! cannot see through. [`UnaryOp`] and [`BinaryOp`] name every elementwise
//! operation the inference stack uses, so the eager path
//! ([`Tensor::apply`], [`Tensor::binary`]) and the `graph` crate's fused
//! single-pass kernels evaluate *the same scalar function* and stay
//! bit-identical by construction.
//!
//! The scalar formulas here are the single source of truth: the `autograd`
//! activation forwards delegate to [`UnaryOp::eval`], and the graph
//! executor folds chains of these ops into one pass over a buffer.

use crate::{Result, Tensor};

/// `sqrt(2/π)` to `f32` precision — the tanh-approximation GELU constant.
pub const SQRT_2_OVER_PI: f32 = 0.797_884_6;

/// The cubic coefficient of the tanh-approximation GELU.
pub const GELU_COEFF: f32 = 0.044_715;

/// A named elementwise unary operation.
///
/// Every variant is a pure scalar function evaluated by [`UnaryOp::eval`];
/// tensors apply it elementwise via [`Tensor::apply`] /
/// [`Tensor::apply_inplace`], and the graph compiler fuses chains of these
/// into single-pass kernels with identical per-element arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnaryOp {
    /// `max(x, 0)`.
    Relu,
    /// Tanh-approximation GELU:
    /// `0.5 · x · (1 + tanh(√(2/π) · (x + 0.044715 · x³)))`.
    Gelu,
    /// Logistic sigmoid `1 / (1 + e^(−x))`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Natural exponent `e^x`.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// `x + c` for a fixed scalar `c`.
    AddScalar(f32),
    /// `x · c` for a fixed scalar `c`.
    MulScalar(f32),
}

impl UnaryOp {
    /// Evaluates the operation on one scalar.
    ///
    /// This is the shared definition both execution modes use; any change
    /// here changes eager and fused results together, which is what keeps
    /// them bit-identical.
    #[inline]
    pub fn eval(self, x: f32) -> f32 {
        match self {
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Gelu => {
                let inner = SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x);
                0.5 * x * (1.0 + inner.tanh())
            }
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Ln => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::AddScalar(c) => x + c,
            UnaryOp::MulScalar(c) => x * c,
        }
    }
}

/// A named elementwise binary operation between same-shape tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `a + b`.
    Add,
    /// `a − b`.
    Sub,
    /// `a · b`.
    Mul,
    /// `a / b`.
    Div,
}

impl BinaryOp {
    /// Evaluates the operation on one pair of scalars (`a` is the
    /// left-hand operand).
    #[inline]
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
        }
    }
}

impl Tensor {
    /// Applies a named unary operation elementwise, returning a new tensor.
    ///
    /// Equivalent to `self.map(|v| op.eval(v))` but with the operation
    /// visible to callers, static analysis, and the graph compiler.
    pub fn apply(&self, op: UnaryOp) -> Tensor {
        self.map(|v| op.eval(v))
    }

    /// Applies a named unary operation elementwise in place.
    pub fn apply_inplace(&mut self, op: UnaryOp) {
        self.map_inplace(|v| op.eval(v));
    }

    /// Applies a named binary operation elementwise against a same-shape
    /// tensor (`self` is the left-hand operand).
    ///
    /// # Errors
    /// Returns [`crate::TensorError::ShapeMismatch`] if the shapes differ.
    pub fn binary(&self, other: &Tensor, op: BinaryOp) -> Result<Tensor> {
        match op {
            BinaryOp::Add => self.add(other),
            BinaryOp::Sub => self.sub(other),
            BinaryOp::Mul => self.mul(other),
            BinaryOp::Div => self.div(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_matches_closure_map() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]).unwrap();
        assert_eq!(x.apply(UnaryOp::Relu), x.map(|v| v.max(0.0)));
        assert_eq!(
            x.apply(UnaryOp::Sigmoid),
            x.map(|v| 1.0 / (1.0 + (-v).exp()))
        );
        assert_eq!(x.apply(UnaryOp::Tanh), x.map(f32::tanh));
        assert_eq!(x.apply(UnaryOp::AddScalar(1.5)), x.add_scalar(1.5));
        assert_eq!(x.apply(UnaryOp::MulScalar(-3.0)), x.scale(-3.0));
    }

    #[test]
    fn gelu_formula_is_the_tanh_approximation() {
        let x = 0.5f32;
        let inner = SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x);
        assert_eq!(UnaryOp::Gelu.eval(x), 0.5 * x * (1.0 + inner.tanh()));
        assert_eq!(UnaryOp::Gelu.eval(0.0), 0.0);
    }

    #[test]
    fn apply_inplace_matches_apply() {
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0], &[3]).unwrap();
        let mut y = x.clone();
        y.apply_inplace(UnaryOp::Abs);
        assert_eq!(y, x.apply(UnaryOp::Abs));
    }

    #[test]
    fn binary_dispatches_to_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 4.0, 9.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert_eq!(a.binary(&b, BinaryOp::Add).unwrap(), a.add(&b).unwrap());
        assert_eq!(a.binary(&b, BinaryOp::Sub).unwrap(), a.sub(&b).unwrap());
        assert_eq!(a.binary(&b, BinaryOp::Mul).unwrap(), a.mul(&b).unwrap());
        assert_eq!(a.binary(&b, BinaryOp::Div).unwrap(), a.div(&b).unwrap());
        assert!(a.binary(&Tensor::zeros(&[2]), BinaryOp::Add).is_err());
    }
}
