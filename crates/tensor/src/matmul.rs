//! Packed, register-tiled, data-parallel, runtime-dispatched matrix
//! multiplication.
//!
//! Every matmul funnels into one packed GEMM through a single entry point,
//! [`Tensor::matmul_ex`], whose [`MatmulSpec`] selects which operands are
//! read transposed (`A·B`, `Aᵀ·B`, `A·Bᵀ`, `Aᵀ·Bᵀ`); the legacy
//! `matmul`/`matmul_tn`/`matmul_nt` methods are thin wrappers over it.
//! The operands are repacked into contiguous panels (which also absorbs
//! the transposes, so the kernel never strides) and row panels of the
//! output are distributed across threads via the `parallel` crate. The
//! register-tiled core lives in [`simd::gemm`]: the tile dims come **at
//! runtime** from the active dispatch level (`simd::gemm::tile_dims` —
//! portable 4 × 8 scalar tile, explicit-intrinsic 6 × 8 AVX2 tile,
//! opt-in 8 × 8 FMA tile), so the one portable binary runs the wide tile
//! wherever the CPU supports it — no `-C target-cpu=native` rebuild.
//!
//! # Determinism
//!
//! Every output element is accumulated by one sequential `k`-loop inside
//! one band-kernel invocation, and panel boundaries depend only on the
//! operand shapes — never on the thread count. Results are therefore
//! byte-identical under `VITAL_THREADS=1` and `VITAL_THREADS=N` (the
//! property tests in `tests/proptest_gemm.rs` enforce this). Across
//! dispatch levels the GEMM inherits the simd crate's contract: the
//! scalar and AVX2 tiles run the identical unfused multiply-then-add
//! chain per output element, so `VITAL_SIMD=scalar` and `=avx2` are
//! **bit-identical on every input** (`tests/proptest_gemm_dispatch.rs`),
//! while the opt-in FMA tile is only ULP-bounded.

use crate::{Result, Tensor, TensorError};

/// Which operands a matmul reads transposed, without materialising the
/// transpose.
///
/// This is the single entry point's configuration: `matmul_ex(b, spec)`
/// computes `op(A) · op(B)` where `op` transposes the operand iff the
/// corresponding flag is set. The legacy `matmul` / `matmul_tn` /
/// `matmul_nt` methods are thin wrappers over the four spec values, and
/// the graph compiler lowers every matmul node to this spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MatmulSpec {
    /// Read the left operand transposed (`Aᵀ`).
    pub trans_a: bool,
    /// Read the right operand transposed (`Bᵀ`).
    pub trans_b: bool,
}

impl MatmulSpec {
    /// `A · B` — neither operand transposed.
    pub const NN: MatmulSpec = MatmulSpec {
        trans_a: false,
        trans_b: false,
    };
    /// `Aᵀ · B`.
    pub const TN: MatmulSpec = MatmulSpec {
        trans_a: true,
        trans_b: false,
    };
    /// `A · Bᵀ`.
    pub const NT: MatmulSpec = MatmulSpec {
        trans_a: false,
        trans_b: true,
    };
    /// `Aᵀ · Bᵀ`.
    pub const TT: MatmulSpec = MatmulSpec {
        trans_a: true,
        trans_b: true,
    };
}

/// How a stored rank-2 operand is read by the GEMM.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// `op(X) = X`: element `(r, c)` is `data[r * stride + c]`.
    Normal,
    /// `op(X) = Xᵀ`: element `(r, c)` is `data[c * stride + r]`.
    Transposed,
}

/// Packs rows `[row0, row0 + rows)` of the `m × k` operand `op(A)` into
/// `mr`-padded panel order: one panel per `mr` rows, each storing `k`
/// groups of `mr` consecutive row values (zero-padded past `rows`), so
/// the band kernel reads A with unit stride. `mr` comes from the active
/// dispatch level's tile dims at runtime.
fn pack_a_band(
    data: &[f32],
    layout: Layout,
    stride: usize,
    k: usize,
    row0: usize,
    rows: usize,
    mr: usize,
) -> Vec<f32> {
    let panels = rows.div_ceil(mr);
    let mut packed = vec![0.0f32; panels * k * mr];
    for panel in 0..panels {
        let base_row = row0 + panel * mr;
        let live = mr.min(row0 + rows - base_row);
        let dst_panel = &mut packed[panel * k * mr..(panel + 1) * k * mr];
        for p in 0..k {
            let dst = &mut dst_panel[p * mr..p * mr + live];
            match layout {
                Layout::Normal => {
                    for (i, d) in dst.iter_mut().enumerate() {
                        *d = data[(base_row + i) * stride + p];
                    }
                }
                Layout::Transposed => {
                    let src = &data[p * stride + base_row..p * stride + base_row + live];
                    dst.copy_from_slice(src);
                }
            }
        }
    }
    packed
}

/// Packs the full `k × n` operand `op(B)` into `nr`-padded panel order:
/// one panel per `nr` columns, each storing `k` groups of `nr` consecutive
/// column values (zero-padded past `n`).
fn pack_b(data: &[f32], layout: Layout, stride: usize, k: usize, n: usize, nr: usize) -> Vec<f32> {
    let panels = n.div_ceil(nr);
    let mut packed = vec![0.0f32; panels * k * nr];
    for panel in 0..panels {
        let base_col = panel * nr;
        let live = nr.min(n - base_col);
        let dst_panel = &mut packed[panel * k * nr..(panel + 1) * k * nr];
        for p in 0..k {
            let dst = &mut dst_panel[p * nr..p * nr + live];
            match layout {
                Layout::Normal => {
                    let src = &data[p * stride + base_col..p * stride + base_col + live];
                    dst.copy_from_slice(src);
                }
                Layout::Transposed => {
                    for (j, d) in dst.iter_mut().enumerate() {
                        *d = data[(base_col + j) * stride + p];
                    }
                }
            }
        }
    }
    packed
}

/// Packed GEMM over raw row-major buffers: `out = op(A) · op(B)` with
/// `op(A)` of shape `m × k` and `op(B)` of shape `k × n`.
///
/// B is packed once and shared read-only; the output is split into MR-row
/// panels which are distributed across threads, each worker packing its own
/// band of A.
/// Products whose `k × n` working set is below this skip packing entirely:
/// at attention-head scale the pack/alloc overhead outweighs the tiled
/// kernel. The trigger deliberately ignores `m`, so a stacked batch takes
/// the same path (and accumulates in the same order) as its individual
/// samples — the batched-equals-single bit-exactness guarantee depends on
/// this.
const SMALL_KN: usize = 4096;

fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a: (&[f32], Layout, usize),
    b: (&[f32], Layout, usize),
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    gemm_into(simd::active_level(), m, k, n, a, b, &mut out);
    out
}

/// The packed GEMM writing into a caller-provided `m · n` buffer — the
/// allocation-free core that both [`gemm`] and the graph executor's
/// arena-slot path share. The buffer is fully overwritten (zeroed first
/// where the kernel accumulates), so stale contents never leak through.
///
/// `level` selects the band microkernel (and with it the packing tile
/// dims) at runtime; requests above the CPU's capability clamp down
/// identically on both sides of the seam (see `simd::gemm::tile_dims`).
fn gemm_into(
    level: simd::Level,
    m: usize,
    k: usize,
    n: usize,
    a: (&[f32], Layout, usize),
    b: (&[f32], Layout, usize),
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n, "gemm output buffer size");
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let (b_data, b_layout, b_stride) = b;
    let (a_data, a_layout, a_stride) = a;
    if k * n <= SMALL_KN {
        // Unpacked fast path. Rows are independent and every output element
        // accumulates over `p` in order, so results don't depend on the
        // thread count here either.
        for (i, out_row) in out.chunks_exact_mut(n).enumerate() {
            match b_layout {
                // Row-major B: broadcast a(i,p) across B's contiguous row p
                // (the inner j-loop vectorizes).
                Layout::Normal => {
                    for p in 0..k {
                        let av = match a_layout {
                            Layout::Normal => a_data[i * a_stride + p],
                            Layout::Transposed => a_data[p * a_stride + i],
                        };
                        let b_row = &b_data[p * b_stride..p * b_stride + n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
                // Bᵀ: rows of the stored matrix are contiguous over `p`, so
                // each output element is a contiguous dot product.
                Layout::Transposed => {
                    for (j, o) in out_row.iter_mut().enumerate() {
                        let b_row = &b_data[j * b_stride..j * b_stride + k];
                        let mut acc = 0.0f32;
                        for (p, &bv) in b_row.iter().enumerate() {
                            let av = match a_layout {
                                Layout::Normal => a_data[i * a_stride + p],
                                Layout::Transposed => a_data[p * a_stride + i],
                            };
                            acc += av * bv;
                        }
                        *o = acc;
                    }
                }
            }
        }
        return;
    }
    let (mr, nr) = simd::gemm::tile_dims(level);
    let packed_b = pack_b(b_data, b_layout, b_stride, k, n, nr);
    parallel::parallel_chunks_mut(out, mr * n, |panel_idx, out_band| {
        let row0 = panel_idx * mr;
        let rows = out_band.len() / n;
        let a_panel = pack_a_band(a_data, a_layout, a_stride, k, row0, rows, mr);
        simd::gemm::gemm_band_at(level, &a_panel, &packed_b, k, n, rows, out_band);
    });
}

/// Packed GEMM over raw row-major slices into a caller-provided buffer:
/// `out = op(A) · op(B)` with `op(A)` of shape `m × k` and `op(B)` of shape
/// `k × n` per `spec`.
///
/// This is the graph executor's entry point: it lets a compiled plan run
/// matmuls directly between arena slots with zero allocations (beyond the
/// kernel's internal pack buffers) while accumulating in exactly the order
/// the [`Tensor::matmul_ex`] family does, preserving bit-identical results.
///
/// Operand slices are stored row-major *before* the transpose is applied:
/// with `trans_a` set, `a` holds a `k × m` matrix; with `trans_b` set, `b`
/// holds an `n × k` matrix.
///
/// # Panics
/// Panics if a slice length does not match its stated dimensions — callers
/// (the plan compiler) establish shapes statically, so a mismatch is a
/// programming error rather than a data error.
pub fn gemm_ex_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    spec: MatmulSpec,
    out: &mut [f32],
) {
    gemm_ex_into_at(simd::active_level(), m, k, n, a, b, spec, out);
}

/// [`gemm_ex_into`] pinned at an explicit SIMD dispatch level (clamped at
/// hardware support).
///
/// This is what lets a compiled graph plan latch `simd::active_level()`
/// at build time and execute every GEMM step at that level for the life
/// of the plan — the same eager ≡ compiled guarantee the transcendental
/// kernels already carry — and what the dispatch-parity tests and
/// forced-scalar benchmark sweeps use to compare levels inside one
/// process.
///
/// # Panics
/// Panics if a slice length does not match its stated dimensions (see
/// [`gemm_ex_into`]).
#[allow(clippy::too_many_arguments)] // mirrors gemm_ex_into plus the level pin
pub fn gemm_ex_into_at(
    level: simd::Level,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    spec: MatmulSpec,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm_ex_into: A length vs m × k");
    assert_eq!(b.len(), k * n, "gemm_ex_into: B length vs k × n");
    assert_eq!(out.len(), m * n, "gemm_ex_into: out length vs m × n");
    let (a_layout, a_stride) = if spec.trans_a {
        (Layout::Transposed, m)
    } else {
        (Layout::Normal, k)
    };
    let (b_layout, b_stride) = if spec.trans_b {
        (Layout::Transposed, k)
    } else {
        (Layout::Normal, n)
    };
    gemm_into(
        level,
        m,
        k,
        n,
        (a, a_layout, a_stride),
        (b, b_layout, b_stride),
        out,
    );
}

/// Interprets an operand as a matrix for a matmul-family op.
///
/// Rank-1 shapes are viewed as a single row; rank-0 and rank > 2 operands
/// are rejected with a [`TensorError::ShapeMismatch`] that names both operand
/// shapes (rather than a bare rank error), since the fix — reshaping the
/// offending operand — depends on how the two shapes were meant to line up.
fn matmul_operand_dims(
    op: &'static str,
    operand: &Tensor,
    lhs: &Tensor,
    rhs: &Tensor,
) -> Result<(usize, usize)> {
    match operand.shape().dims() {
        [n] => Ok((1, *n)),
        [r, c] => Ok((*r, *c)),
        _ => Err(TensorError::ShapeMismatch {
            op,
            lhs: lhs.shape().dims().to_vec(),
            rhs: rhs.shape().dims().to_vec(),
        }),
    }
}

impl Tensor {
    /// Matrix product `op(self) · op(other)` — the single matmul entry
    /// point, with per-operand transposes selected by [`MatmulSpec`] and
    /// never materialised.
    ///
    /// Rank-1 operands are promoted to matrices: a rank-1 operand is read
    /// as a single row before its transpose flag applies, and — for an
    /// untransposed right operand only — a rank-1 right operand whose
    /// length matches the inner dimension is a `k × 1` column (no explicit
    /// reshape needed; the result is then `m × 1`). Rank > 2 operands are
    /// rejected.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions
    /// differ or either operand is not rank 1/2.
    pub fn matmul_ex(&self, other: &Tensor, spec: MatmulSpec) -> Result<Tensor> {
        const OP: &str = "matmul_ex (operands must be rank 1 or 2)";
        let (m, k) = if spec.trans_a {
            let (k, m) = matmul_operand_dims(OP, self, self, other)?;
            (m, k)
        } else {
            matmul_operand_dims(OP, self, self, other)?
        };
        let (k2, n) = if spec.trans_b {
            let (n, k2) = matmul_operand_dims(OP, other, self, other)?;
            (k2, n)
        } else {
            match other.shape().dims() {
                // A rank-1 right operand is a row when the inner dimension
                // is 1 (the historical interpretation), otherwise a k×1
                // column when its length matches the inner dimension.
                [len] if k != 1 && *len == k => (k, 1),
                _ => matmul_operand_dims(OP, other, self, other)?,
            }
        };
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_ex",
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        let (a_layout, a_stride) = if spec.trans_a {
            (Layout::Transposed, m)
        } else {
            (Layout::Normal, k)
        };
        let (b_layout, b_stride) = if spec.trans_b {
            (Layout::Transposed, k)
        } else {
            (Layout::Normal, n)
        };
        let out = gemm(
            m,
            k,
            n,
            (self.as_slice(), a_layout, a_stride),
            (other.as_slice(), b_layout, b_stride),
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `self · other`.
    ///
    /// Thin wrapper over [`Tensor::matmul_ex`] with [`MatmulSpec::NN`];
    /// prefer `matmul_ex` in new code — the three fixed-spec methods are
    /// kept for incremental migration and will eventually be retired.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ
    /// or either operand is not rank 1/2.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_ex(other, MatmulSpec::NN)
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// Thin wrapper over [`Tensor::matmul_ex`] with [`MatmulSpec::TN`];
    /// prefer `matmul_ex` in new code — the three fixed-spec methods are
    /// kept for incremental migration and will eventually be retired.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the row counts differ or
    /// either operand is not rank 1/2.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_ex(other, MatmulSpec::TN)
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// Thin wrapper over [`Tensor::matmul_ex`] with [`MatmulSpec::NT`];
    /// prefer `matmul_ex` in new code — the three fixed-spec methods are
    /// kept for incremental migration and will eventually be retired.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ or
    /// either operand is not rank 1/2.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_ex(other, MatmulSpec::NT)
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn small_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn vector_times_matrix() {
        let v = t(&[1.0, 2.0], &[2]);
        let m = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let r = v.matmul(&m).unwrap();
        assert_eq!(r.shape().dims(), &[1, 2]);
        assert_eq!(r.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn matrix_times_rank1_column() {
        // A rank-1 RHS whose length matches the inner dimension acts as a
        // k × 1 column without an explicit reshape.
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let v = t(&[1.0, 0.0, -1.0], &[3]);
        let r = m.matmul(&v).unwrap();
        assert_eq!(r.shape().dims(), &[2, 1]);
        assert_eq!(r.as_slice(), &[-2.0, -2.0]);
        // ...and matches the explicit reshape it used to require.
        let reshaped = m.matmul(&v.reshape(&[3, 1]).unwrap()).unwrap();
        assert_eq!(r, reshaped);
    }

    #[test]
    fn rank1_rhs_with_unit_inner_dim_stays_a_row() {
        // Historical interpretation: with k == 1 a rank-1 RHS is a 1 × n row.
        let col = t(&[2.0, 3.0], &[2, 1]);
        let v = t(&[1.0, 10.0, 100.0], &[3]);
        let r = col.matmul(&v).unwrap();
        assert_eq!(r.shape().dims(), &[2, 3]);
        assert_eq!(r.as_slice(), &[2.0, 20.0, 200.0, 3.0, 30.0, 300.0]);
    }

    #[test]
    fn mismatched_rank1_rhs_errors() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert!(m.matmul(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn rank3_operands_report_shape_mismatch() {
        let cube = Tensor::zeros(&[2, 2, 2]);
        let mat = Tensor::zeros(&[2, 2]);
        for err in [
            mat.matmul(&cube).unwrap_err(),
            cube.matmul(&mat).unwrap_err(),
            cube.matmul_tn(&mat).unwrap_err(),
            mat.matmul_nt(&cube).unwrap_err(),
        ] {
            match err {
                TensorError::ShapeMismatch { op, lhs, rhs } => {
                    assert!(op.contains("rank 1 or 2"), "op: {op}");
                    assert!(lhs == vec![2, 2, 2] || rhs == vec![2, 2, 2]);
                }
                other => panic!("expected ShapeMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn transposed_variants_match_naive() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, -1.0, 0.5, 2.0, 3.0, -2.0], &[2, 3]);
        // a^T (3x2) * b (2x3) = 3x3
        let tn = a.matmul_tn(&b).unwrap();
        let naive = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(tn, naive);
        // a (2x3) * b^T (3x2) = 2x2
        let nt = a.matmul_nt(&b).unwrap();
        let naive2 = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(nt, naive2);
    }

    #[test]
    fn packed_kernel_matches_naive_across_panel_boundaries() {
        // Sizes straddle the MR/NR panel edges, and the last two cross
        // SMALL_KN into the packed kernel (including its padded edge
        // panels).
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 3, 9),
            (13, 17, 23),
            (70, 65, 33),
            (70, 65, 70),
            (33, 130, 65),
        ] {
            let a_data: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect();
            let b_data: Vec<f32> = (0..k * n).map(|i| ((i % 7) as f32) * 0.5 - 1.5).collect();
            let a = t(&a_data, &[m, k]);
            let b = t(&b_data, &[k, n]);
            let c = a.matmul(&b).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += a_data[i * k + p] * b_data[p * n + j];
                    }
                    let got = c.at(i, j).unwrap();
                    assert!(
                        (got - acc).abs() < 1e-3,
                        "({m}x{k}x{n}) ({i},{j}): {got} vs {acc}"
                    );
                }
            }
        }
    }

    #[test]
    fn thread_counts_are_byte_identical() {
        // k·n on both sides of SMALL_KN, so the unpacked fast path AND the
        // packed parallel kernel are each held to the bit-identity contract.
        for (m, k, n) in [(37, 29, 31), (70, 67, 96)] {
            let a = crate::rng::SeededRng::new(1).uniform_tensor(&[m, k], -1.0, 1.0);
            let b = crate::rng::SeededRng::new(2).uniform_tensor(&[k, n], -1.0, 1.0);
            let single = parallel::with_threads(1, || a.matmul(&b).unwrap());
            for threads in [2, 3, 8] {
                let multi = parallel::with_threads(threads, || a.matmul(&b).unwrap());
                assert_eq!(single, multi, "threads={threads} ({m}x{k}x{n})");
            }
        }
    }

    #[test]
    fn matmul_ex_covers_all_four_specs() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, -1.0, 0.5, 2.0, 3.0, -2.0], &[2, 3]);
        // NN/TN/NT agree with the legacy wrappers byte-for-byte.
        assert_eq!(
            a.matmul_ex(&b.transpose().unwrap(), MatmulSpec::NN)
                .unwrap(),
            a.matmul(&b.transpose().unwrap()).unwrap()
        );
        assert_eq!(
            a.matmul_ex(&b, MatmulSpec::TN).unwrap(),
            a.matmul_tn(&b).unwrap()
        );
        assert_eq!(
            a.matmul_ex(&b, MatmulSpec::NT).unwrap(),
            a.matmul_nt(&b).unwrap()
        );
        // TT matches the naive materialised double transpose:
        // Aᵀ (3×2) · Bᵀ (2×4) = 3×4.
        let b_tt = t(&[1.0, -1.0, 2.0, 0.5, -0.25, 3.0, 1.5, -2.0], &[4, 2]);
        let tt = a.matmul_ex(&b_tt, MatmulSpec::TT).unwrap();
        let naive = a
            .transpose()
            .unwrap()
            .matmul(&b_tt.transpose().unwrap())
            .unwrap();
        assert_eq!(tt.shape().dims(), &[3, 4]);
        assert_eq!(tt, naive);
    }

    #[test]
    fn gemm_ex_into_matches_matmul_ex() {
        let (m, k, n) = (5, 7, 3);
        let a_nn: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.25 - 2.0).collect();
        let b_nn: Vec<f32> = (0..k * n).map(|i| 1.5 - (i as f32) * 0.5).collect();
        for spec in [
            MatmulSpec::NN,
            MatmulSpec::TN,
            MatmulSpec::NT,
            MatmulSpec::TT,
        ] {
            let a_dims = if spec.trans_a { [k, m] } else { [m, k] };
            let b_dims = if spec.trans_b { [n, k] } else { [k, n] };
            let a = t(&a_nn, &a_dims);
            let b = t(&b_nn, &b_dims);
            let expected = a.matmul_ex(&b, spec).unwrap();
            let mut out = vec![f32::NAN; m * n];
            gemm_ex_into(m, k, n, a.as_slice(), b.as_slice(), spec, &mut out);
            assert_eq!(out.as_slice(), expected.as_slice(), "{spec:?}");
        }
    }

    #[test]
    fn dot_product() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Tensor::zeros(&[2])).is_err());
    }
}
