//! Blocked matrix multiplication.
//!
//! The VITAL model is small (a few hundred thousand parameters), so a cache
//! blocked, `f32` triple loop is more than adequate; no SIMD intrinsics or
//! external BLAS are used, keeping the workspace dependency-free.

use crate::{Result, Tensor, TensorError};

/// Cache block edge (elements). 64×64×4 B ≈ 16 KiB per operand block, which
/// comfortably fits in L1/L2 on commodity CPUs.
const BLOCK: usize = 64;

impl Tensor {
    /// Matrix product `self · other`.
    ///
    /// Rank-1 operands are interpreted as a single row on the left and are
    /// not accepted on the right unless their length matches the inner
    /// dimension as a `k × 1` column would require an explicit reshape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ
    /// or either operand is not rank 1/2.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = self.shape().as_matrix()?;
        let (k2, n) = other.shape().as_matrix()?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];

        for ii in (0..m).step_by(BLOCK) {
            let i_end = (ii + BLOCK).min(m);
            for kk in (0..k).step_by(BLOCK) {
                let k_end = (kk + BLOCK).min(k);
                for jj in (0..n).step_by(BLOCK) {
                    let j_end = (jj + BLOCK).min(n);
                    for i in ii..i_end {
                        for p in kk..k_end {
                            let a_ip = a[i * k + p];
                            if a_ip == 0.0 {
                                continue;
                            }
                            let b_row = &b[p * n + jj..p * n + j_end];
                            let o_row = &mut out[i * n + jj..i * n + j_end];
                            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                                *o += a_ip * bv;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the row counts differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = self.shape().as_matrix()?;
        let (k2, n) = other.shape().as_matrix()?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            for i in 0..m {
                let a_pi = a[p * m + i];
                if a_pi == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                let o_row = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += a_pi * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = self.shape().as_matrix()?;
        let (n, k2) = other.shape().as_matrix()?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Dot product of two rank-1 tensors.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape().dims().to_vec(),
                rhs: other.shape().dims().to_vec(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), dims).unwrap()
    }

    #[test]
    fn small_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn vector_times_matrix() {
        let v = t(&[1.0, 2.0], &[2]);
        let m = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let r = v.matmul(&m).unwrap();
        assert_eq!(r.shape().dims(), &[1, 2]);
        assert_eq!(r.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn transposed_variants_match_naive() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, -1.0, 0.5, 2.0, 3.0, -2.0], &[2, 3]);
        // a^T (3x2) * b (2x3) = 3x3
        let tn = a.matmul_tn(&b).unwrap();
        let naive = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(tn, naive);
        // a (2x3) * b^T (3x2) = 2x2
        let nt = a.matmul_nt(&b).unwrap();
        let naive2 = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(nt, naive2);
    }

    #[test]
    fn blocked_matches_naive_on_larger_sizes() {
        // Exercise the blocking path (> BLOCK on one dim).
        let m = 70;
        let k = 65;
        let n = 33;
        let a_data: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect();
        let b_data: Vec<f32> = (0..k * n).map(|i| ((i % 7) as f32) * 0.5 - 1.5).collect();
        let a = t(&a_data, &[m, k]);
        let b = t(&b_data, &[k, n]);
        let c = a.matmul(&b).unwrap();
        // Naive reference for a few spot positions.
        for &(i, j) in &[(0usize, 0usize), (69, 32), (35, 16), (10, 31)] {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a_data[i * k + p] * b_data[p * n + j];
            }
            let got = c.at(i, j).unwrap();
            assert!((got - acc).abs() < 1e-3, "({i},{j}): {got} vs {acc}");
        }
    }

    #[test]
    fn dot_product() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Tensor::zeros(&[2])).is_err());
    }
}
