use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and arithmetic.
///
/// Every fallible operation in this crate reports one of these variants; the
/// messages carry the offending shapes so mismatches can be diagnosed without
/// a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements supplied does not match the requested shape.
    LengthMismatch {
        /// Number of elements provided by the caller.
        provided: usize,
        /// Number of elements implied by the requested shape.
        expected: usize,
    },
    /// Two operands have shapes that are incompatible for the operation.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank expected by the operation.
        expected: usize,
        /// Rank of the tensor that was provided.
        actual: usize,
    },
    /// An index or axis was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// Name of the operation that failed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound that was violated.
        bound: usize,
    },
    /// The operation received an empty tensor or empty shape where data is required.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { provided, expected } => write!(
                f,
                "data length {provided} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "incompatible shapes for {op}: lhs {lhs:?} vs rhs {rhs:?}"
            ),
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op} expects rank {expected} tensor, got rank {actual}"),
            TensorError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "{op} index {index} out of bounds for size {bound}")
            }
            TensorError::Empty { op } => write!(f, "{op} requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            provided: 3,
            expected: 4,
        };
        assert_eq!(e.to_string(), "data length 3 does not match shape volume 4");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("[2, 3]"));
    }

    #[test]
    fn display_rank_mismatch() {
        let e = TensorError::RankMismatch {
            op: "transpose",
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("rank 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
