//! Cross-level parity for the runtime-dispatched packed GEMM.
//!
//! The dispatch contract mirrors `crates/simd/tests/proptest_parity.rs`:
//! the `Scalar` and `Avx2` GEMM tiles evaluate every output element as the
//! same sequential multiply-then-add chain over `p` (the tile shape only
//! changes register blocking, never within-chain order), so the two levels
//! must agree **bit-for-bit** on every input, every transpose variant,
//! every thread count, and every size — including panel edges at MR/NR
//! multiples ± 1 and both sides of the small-product fast-path cutoff.
//! The opt-in `Fma` tile contracts each multiply–add into a single
//! rounding, so it is only ULP-bounded against scalar.
//!
//! `VITAL_SIMD` latches once per process, so these properties pin levels
//! explicitly through [`tensor::gemm_ex_into_at`]; on a scalar-only host
//! the pinned vector levels clamp down to scalar and the properties check
//! reflexivity, passing (vacuously for the cross-level part) everywhere.

use proptest::prelude::*;
use simd::Level;
use tensor::rng::SeededRng;
use tensor::{gemm_ex_into_at, MatmulSpec};

/// Bit pattern distance in units-in-the-last-place, walking through zero
/// for opposite signs.
fn ulp_diff(a: f32, b: f32) -> u64 {
    let rank = |v: f32| {
        let bits = v.to_bits();
        let mag = i64::from(bits & 0x7fff_ffff);
        if bits >> 31 == 0 {
            mag
        } else {
            -mag
        }
    };
    rank(a).abs_diff(rank(b))
}

/// Each FMA contraction drops one rounding per multiply–add; with the
/// positive operands these properties draw (no cancellation, so the
/// accumulator magnitude never collapses below its terms) the drift over a
/// k ≤ 96 chain stays far inside this envelope.
const FMA_ULP_BOUND: u64 = 256;

const SPECS: [(MatmulSpec, &str); 4] = [
    (MatmulSpec::NN, "NN"),
    (MatmulSpec::TN, "TN"),
    (MatmulSpec::NT, "NT"),
    (MatmulSpec::TT, "TT"),
];

/// `base · t ± 1` clamped to ≥ 1: lands one short of, exactly on, and one
/// past a panel edge for tile dimension `base`.
fn around_multiple(base: usize, t: usize, off: i64) -> usize {
    ((base * t) as i64 + off).max(1) as usize
}

/// Sizes that straddle the panel edges of every tile the kernel ships
/// with (MR ∈ {4, 6, 8}, NR = 8) and cross the small-product cutoff
/// (`k·n ≤ 4096` stays on the unpacked fast path) from both sides.
fn dims() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (
        // m around MR·t ± 1: candidates 4..8 cover every level's tile height
        (4usize..=8, 1usize..4, -1i64..=1),
        // k up to 95 and n around 8·t ± 1 (t < 18): k·n spans both sides
        // of the 4096 small-product cutoff
        (1usize..96, 1usize..18, -1i64..=1),
        0u64..10_000,
    )
        .prop_map(|((mr, mt, mo), (k, nt, no), seed)| {
            let m = around_multiple(mr, mt, mo);
            let n = around_multiple(8, nt, no);
            (m, k, n, seed)
        })
}

fn inputs(m: usize, k: usize, n: usize, seed: u64, lo: f32, hi: f32) -> (Vec<f32>, Vec<f32>) {
    let mut rng = SeededRng::new(seed);
    let a = rng.uniform_tensor(&[m, k], lo, hi).as_slice().to_vec();
    let b = rng.uniform_tensor(&[k, n], lo, hi).as_slice().to_vec();
    (a, b)
}

/// Run one GEMM at a pinned level. `spec` reinterprets the row-major
/// buffers, so A is `m×k` when read normal and `k×m` when read transposed;
/// the flat lengths `m·k` / `k·n` are valid either way.
fn run_at(
    level: Level,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    spec: MatmulSpec,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    gemm_ex_into_at(level, m, k, n, a, b, spec, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Scalar ≡ AVX2, bit-for-bit: all four transpose variants, panel-edge
    /// sizes on both sides of the fast-path cutoff, 1 and 4 worker threads.
    #[test]
    fn scalar_and_avx2_dispatch_are_bit_identical(
        (m, k, n, seed) in dims(),
    ) {
        let (a, b) = inputs(m, k, n, seed, -2.0, 2.0);
        for (spec, label) in SPECS {
            for threads in [1usize, 4] {
                let (scalar, avx2) = parallel::with_threads(threads, || {
                    (
                        run_at(Level::Scalar, m, k, n, &a, &b, spec),
                        run_at(Level::Avx2, m, k, n, &a, &b, spec),
                    )
                });
                for (idx, (s, v)) in scalar.iter().zip(&avx2).enumerate() {
                    prop_assert!(
                        s.to_bits() == v.to_bits(),
                        "{label} ({m}x{k}x{n}) threads={threads} [{idx}]: \
                         scalar {s:?} vs avx2 {v:?}"
                    );
                }
            }
        }
    }

    /// FMA stays inside the ULP envelope of scalar. Positive operands keep
    /// the accumulation cancellation-free so ULP distance is meaningful.
    #[test]
    fn fma_dispatch_is_ulp_bounded_against_scalar(
        (m, k, n, seed) in dims(),
    ) {
        let (a, b) = inputs(m, k, n, seed, 0.1, 2.0);
        for (spec, label) in SPECS {
            let scalar = run_at(Level::Scalar, m, k, n, &a, &b, spec);
            let fma = run_at(Level::Fma, m, k, n, &a, &b, spec);
            for (idx, (s, f)) in scalar.iter().zip(&fma).enumerate() {
                let d = ulp_diff(*s, *f);
                prop_assert!(
                    d <= FMA_ULP_BOUND,
                    "{label} ({m}x{k}x{n}) [{idx}]: {s} vs fma {f} = {d} ULP"
                );
            }
        }
    }

    /// Pinning the level never changes results across thread counts: the
    /// band split is deterministic per (level, m, n), not per worker pool.
    #[test]
    fn pinned_level_is_thread_count_invariant(
        (m, k, n, seed) in dims(),
    ) {
        let (a, b) = inputs(m, k, n, seed, -2.0, 2.0);
        for level in [Level::Scalar, Level::Avx2, Level::Fma] {
            let single = parallel::with_threads(1, || {
                run_at(level, m, k, n, &a, &b, MatmulSpec::NN)
            });
            let multi = parallel::with_threads(4, || {
                run_at(level, m, k, n, &a, &b, MatmulSpec::NN)
            });
            prop_assert!(single == multi, "level={}", level.name());
        }
    }
}

/// Deterministic sweep pinning exact MR/NR-multiple ± 1 corners for every
/// tile height the kernel ships with, crossing the small-product cutoff.
#[test]
fn exhaustive_cross_level_boundary_sweep() {
    let best = simd::detected_level().min(Level::Avx2);
    for &m in &[1, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15, 16, 17, 23, 24, 25] {
        for &(k, n) in &[(17, 8), (31, 33), (64, 63), (64, 65), (65, 129)] {
            let (a, b) = inputs(m, k, n, (m * 1_000 + k * 10 + n) as u64, -1.0, 1.0);
            let scalar = run_at(Level::Scalar, m, k, n, &a, &b, MatmulSpec::NN);
            let vector = run_at(best, m, k, n, &a, &b, MatmulSpec::NN);
            for (idx, (s, v)) in scalar.iter().zip(&vector).enumerate() {
                assert!(
                    s.to_bits() == v.to_bits(),
                    "({m}x{k}x{n})[{idx}]: scalar {s:?} vs {} {v:?}",
                    best.name()
                );
            }
        }
    }
}
