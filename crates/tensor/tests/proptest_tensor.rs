//! Property-based tests for tensor invariants.

use proptest::prelude::*;
use tensor::Tensor;

fn vec_and_dims(max: usize) -> impl Strategy<Value = (Vec<f32>, usize, usize)> {
    (1..max, 1..max).prop_flat_map(|(r, c)| {
        (
            proptest::collection::vec(-100.0f32..100.0, r * c),
            Just(r),
            Just(c),
        )
    })
}

proptest! {
    #[test]
    fn transpose_is_involution((data, r, c) in vec_and_dims(12)) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let back = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn add_commutes((data, r, c) in vec_and_dims(10), seed in 0u64..1000) {
        let a = Tensor::from_vec(data, &[r, c]).unwrap();
        let mut rng = tensor::rng::SeededRng::new(seed);
        let b = rng.uniform_tensor(&[r, c], -5.0, 5.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn matmul_identity_is_noop((data, r, c) in vec_and_dims(10)) {
        let a = Tensor::from_vec(data, &[r, c]).unwrap();
        let i = Tensor::eye(c);
        let prod = a.matmul(&i).unwrap();
        for (x, y) in a.as_slice().iter().zip(prod.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_add((data, r, c) in vec_and_dims(8), seed in 0u64..1000) {
        let a = Tensor::from_vec(data, &[r, c]).unwrap();
        let mut rng = tensor::rng::SeededRng::new(seed);
        let b = rng.uniform_tensor(&[r, c], -2.0, 2.0);
        let m = rng.uniform_tensor(&[c, 3], -2.0, 2.0);
        let lhs = a.add(&b).unwrap().matmul(&m).unwrap();
        let rhs = a.matmul(&m).unwrap().add(&b.matmul(&m).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    #[test]
    fn softmax_rows_are_distributions((data, r, c) in vec_and_dims(10)) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let s = t.softmax_rows().unwrap();
        prop_assert!(s.all_finite());
        for i in 0..r {
            let row = s.row(i).unwrap();
            prop_assert!(row.min().unwrap() >= 0.0);
            prop_assert!((row.sum() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn standardize_has_zero_mean((data, r, c) in vec_and_dims(10)) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let s = t.standardize();
        prop_assert!(s.mean().abs() < 1e-3);
    }

    #[test]
    fn min_max_normalize_bounds((data, r, c) in vec_and_dims(10)) {
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let n = t.min_max_normalize();
        prop_assert!(n.min().unwrap() >= 0.0);
        prop_assert!(n.max().unwrap() <= 1.0 + 1e-6);
    }

    #[test]
    fn slice_then_concat_rows_round_trips((data, r, c) in vec_and_dims(10)) {
        prop_assume!(r >= 2);
        let t = Tensor::from_vec(data, &[r, c]).unwrap();
        let split = r / 2;
        let top = t.slice_rows(0, split).unwrap();
        let bottom = t.slice_rows(split, r).unwrap();
        let back = Tensor::concat_rows(&[&top, &bottom]).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn dot_matches_matmul((_ignored, _r, n) in vec_and_dims(10), seed in 0u64..1000) {
        let mut rng = tensor::rng::SeededRng::new(seed);
        let a = rng.uniform_tensor(&[n], -3.0, 3.0);
        let b = rng.uniform_tensor(&[n], -3.0, 3.0);
        let d = a.dot(&b).unwrap();
        let m = a
            .as_row_matrix()
            .matmul(&b.as_row_matrix().transpose().unwrap())
            .unwrap();
        prop_assert!((d - m.item().unwrap()).abs() < 1e-3);
    }
}
