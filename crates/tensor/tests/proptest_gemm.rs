//! Property-based checks of the packed, data-parallel GEMM: every transpose
//! variant, at 1, 2 and N worker threads, over sizes that straddle the
//! MR/NR panel boundaries and the small-product fast path, must match a
//! naive triple-loop reference to 1e-4.

use proptest::prelude::*;
use tensor::rng::SeededRng;
use tensor::Tensor;

/// Naive reference: `op(A) (m×k) · op(B) (k×n)` with explicit index math.
fn naive_gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &Tensor,
    a_trans: bool,
    b: &Tensor,
    b_trans: bool,
) -> Vec<f32> {
    let ad = a.as_slice();
    let bd = b.as_slice();
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                let av = if a_trans {
                    ad[p * m + i]
                } else {
                    ad[i * k + p]
                };
                let bv = if b_trans {
                    bd[j * k + p]
                } else {
                    bd[p * n + j]
                };
                acc += f64::from(av) * f64::from(bv);
            }
            out[i * n + j] = acc;
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

fn assert_matches_naive(
    got: &Tensor,
    m: usize,
    n: usize,
    expect: &[f32],
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(
        got.shape().dims() == [m, n],
        "{label} shape {:?}",
        got.shape().dims()
    );
    for (idx, (g, e)) in got.as_slice().iter().zip(expect).enumerate() {
        prop_assert!(
            (g - e).abs() < 1e-4 * e.abs().max(1.0),
            "{label}[{idx}]: {g} vs naive {e}"
        );
    }
    Ok(())
}

/// Small sizes straddling the microkernel panel boundaries; with `k·n` at
/// most 39 × 39 = 1521 these always exercise the unpacked small-product
/// fast path.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..40, 1usize..40, 1usize..40)
}

/// Sizes whose `k·n` product spans roughly 2.3k–10k, straddling the
/// `SMALL_KN = 4096` fast-path cutoff from both sides so the packed,
/// parallel kernel (including padded edge panels) is exercised too.
fn dims_packed() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..24, 48usize..80, 48usize..128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_gemm_matches_naive_for_all_variants_and_thread_counts(
        (m, k, n) in dims(),
        seed in 0u64..10_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = rng.uniform_tensor(&[m, k], -2.0, 2.0);
        let b = rng.uniform_tensor(&[k, n], -2.0, 2.0);
        let a_t = rng.uniform_tensor(&[k, m], -2.0, 2.0);
        let b_t = rng.uniform_tensor(&[n, k], -2.0, 2.0);

        let nn = naive_gemm(m, k, n, &a, false, &b, false);
        let tn = naive_gemm(m, k, n, &a_t, true, &b, false);
        let nt = naive_gemm(m, k, n, &a, false, &b_t, true);

        for threads in [1usize, 2, 5] {
            let (got_nn, got_tn, got_nt) = parallel::with_threads(threads, || {
                (
                    a.matmul(&b).unwrap(),
                    a_t.matmul_tn(&b).unwrap(),
                    a.matmul_nt(&b_t).unwrap(),
                )
            });
            assert_matches_naive(&got_nn, m, n, &nn, "matmul")?;
            assert_matches_naive(&got_tn, m, n, &tn, "matmul_tn")?;
            assert_matches_naive(&got_nt, m, n, &nt, "matmul_nt")?;
        }
    }

    #[test]
    fn packed_kernel_matches_naive_for_all_variants_and_thread_counts(
        (m, k, n) in dims_packed(),
        seed in 0u64..10_000,
    ) {
        let mut rng = SeededRng::new(seed.wrapping_add(50_000));
        let a = rng.uniform_tensor(&[m, k], -2.0, 2.0);
        let b = rng.uniform_tensor(&[k, n], -2.0, 2.0);
        let a_t = rng.uniform_tensor(&[k, m], -2.0, 2.0);
        let b_t = rng.uniform_tensor(&[n, k], -2.0, 2.0);

        let nn = naive_gemm(m, k, n, &a, false, &b, false);
        let tn = naive_gemm(m, k, n, &a_t, true, &b, false);
        let nt = naive_gemm(m, k, n, &a, false, &b_t, true);

        for threads in [1usize, 2, 5] {
            let (got_nn, got_tn, got_nt) = parallel::with_threads(threads, || {
                (
                    a.matmul(&b).unwrap(),
                    a_t.matmul_tn(&b).unwrap(),
                    a.matmul_nt(&b_t).unwrap(),
                )
            });
            assert_matches_naive(&got_nn, m, n, &nn, "matmul")?;
            assert_matches_naive(&got_tn, m, n, &tn, "matmul_tn")?;
            assert_matches_naive(&got_nt, m, n, &nt, "matmul_nt")?;
        }
    }

    #[test]
    fn thread_count_never_changes_the_bits(
        (m, k, n) in dims_packed(),
        seed in 0u64..10_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = rng.uniform_tensor(&[m, k], -2.0, 2.0);
        let b = rng.uniform_tensor(&[k, n], -2.0, 2.0);
        let single = parallel::with_threads(1, || a.matmul(&b).unwrap());
        for threads in [2usize, 3, 8] {
            let multi = parallel::with_threads(threads, || a.matmul(&b).unwrap());
            prop_assert!(single == multi, "threads={threads}");
        }
    }

    #[test]
    fn rank1_column_rule_matches_explicit_reshape(
        m in 1usize..20,
        k in 2usize..20,
        seed in 0u64..10_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = rng.uniform_tensor(&[m, k], -2.0, 2.0);
        let v = rng.uniform_tensor(&[k], -2.0, 2.0);
        let implicit = a.matmul(&v).unwrap();
        let explicit = a.matmul(&v.reshape(&[k, 1]).unwrap()).unwrap();
        prop_assert_eq!(implicit, explicit);
    }
}

/// Sizes chosen to land exactly on, one short of, and one past the panel
/// edges for every tile configuration the kernel ships with; the k = 64/65
/// × n = 65..129 corner crosses `SMALL_KN` into the packed kernel.
#[test]
fn exhaustive_panel_boundary_sweep() {
    for &m in &[1, 3, 4, 5, 6, 7, 8, 12, 13, 16, 17] {
        for &k in &[1, 2, 64, 65] {
            for &n in &[1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 65, 128, 129] {
                let mut rng = SeededRng::new((m * 10_000 + k * 100 + n) as u64);
                let a = rng.uniform_tensor(&[m, k], -1.0, 1.0);
                let b = rng.uniform_tensor(&[k, n], -1.0, 1.0);
                let got = a.matmul(&b).unwrap();
                let expect = naive_gemm(m, k, n, &a, false, &b, false);
                for (idx, (g, e)) in got.as_slice().iter().zip(&expect).enumerate() {
                    assert!(
                        (g - e).abs() < 1e-4 * e.abs().max(1.0),
                        "({m}x{k}x{n})[{idx}]: {g} vs {e}"
                    );
                }
            }
        }
    }
}
