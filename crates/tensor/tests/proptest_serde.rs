//! Property-based and adversarial tests for the tensor serde layer:
//! arbitrary shapes/values (including non-finite floats) must round-trip
//! bit-exactly through the `binio` wire format, and corrupt, truncated or
//! mis-versioned inputs must surface as typed errors — never panics.

use binio::BinError;
use proptest::prelude::*;
use tensor::{Shape, Tensor};

/// Bit-level equality: `PartialEq` on `f32` treats NaN != NaN, so the
/// round-trip assertion compares IEEE-754 bit patterns instead.
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Strategy producing a tensor with 1–3 axes and a mix of ordinary,
/// tiny, huge and non-finite values.
fn arbitrary_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..5, 1usize..5, 1usize..4, 0u32..6).prop_flat_map(|(a, b, c, rank_pick)| {
        let dims: Vec<usize> = match rank_pick % 3 {
            0 => vec![a * b * c],
            1 => vec![a, b * c],
            _ => vec![a, b, c],
        };
        let volume: usize = dims.iter().product();
        (
            proptest::collection::vec(-1.0e30f32..1.0e30, volume),
            Just(dims),
            0u32..5,
        )
            .prop_map(|(mut data, dims, weird)| {
                // Splice in non-finite and denormal values deterministically.
                if weird > 0 && !data.is_empty() {
                    let n = data.len();
                    if weird & 1 != 0 {
                        data[0] = f32::NAN;
                    }
                    if weird & 2 != 0 {
                        data[n / 2] = f32::INFINITY;
                    }
                    if weird & 4 != 0 {
                        data[n - 1] = f32::NEG_INFINITY;
                    }
                }
                Tensor::from_vec(data, &dims).expect("volume matches dims")
            })
    })
}

proptest! {
    #[test]
    fn tensor_round_trip_is_bit_exact(t in arbitrary_tensor()) {
        let bytes = binio::to_bytes(&t).unwrap();
        let back: Tensor = binio::from_bytes(&bytes).unwrap();
        prop_assert!(bits_equal(&t, &back), "round-trip altered bits");
    }

    #[test]
    fn every_truncation_is_a_typed_error(t in arbitrary_tensor(), frac in 0.0f64..1.0) {
        let bytes = binio::to_bytes(&t).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        let result: Result<Tensor, BinError> = binio::from_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncated input decoded successfully");
    }

    #[test]
    fn shape_round_trips(dims in proptest::collection::vec(0usize..9, 0..4)) {
        let shape = Shape::new(&dims);
        let bytes = binio::to_bytes(&shape).unwrap();
        let back: Shape = binio::from_bytes(&bytes).unwrap();
        prop_assert_eq!(shape, back);
    }
}

#[test]
fn zero_sized_and_scalar_tensors_round_trip() {
    for t in [
        Tensor::zeros(&[0]),
        Tensor::zeros(&[3, 0]),
        Tensor::scalar(4.25),
    ] {
        let bytes = binio::to_bytes(&t).unwrap();
        let back: Tensor = binio::from_bytes(&bytes).unwrap();
        assert!(bits_equal(&t, &back));
    }
}

#[test]
fn data_length_mismatch_is_rejected() {
    // Hand-craft a payload whose shape says [2, 2] but whose data sequence
    // claims 3 elements.
    let mut s = binio::BinSerializer::new();
    use serde::ser::Serializer;
    s.serialize_struct("Tensor", 2).unwrap();
    s.serialize_seq(2).unwrap(); // shape: rank 2
    s.serialize_usize(2).unwrap();
    s.serialize_usize(2).unwrap();
    s.serialize_seq(3).unwrap(); // data: wrong element count
    for v in [1.0f32, 2.0, 3.0] {
        s.serialize_f32(v).unwrap();
    }
    let result: Result<Tensor, BinError> = binio::from_bytes(&s.into_bytes());
    match result {
        Err(BinError::InvalidData(msg)) => assert!(msg.contains("does not match")),
        other => panic!("expected InvalidData, got {other:?}"),
    }
}

#[test]
fn overflowing_shape_volume_is_rejected() {
    let mut s = binio::BinSerializer::new();
    use serde::ser::Serializer;
    s.serialize_struct("Tensor", 2).unwrap();
    s.serialize_seq(2).unwrap();
    s.serialize_u64(u64::MAX).unwrap(); // dim 0
    s.serialize_u64(2).unwrap(); // dim 1 → volume overflows
    s.serialize_seq(0).unwrap();
    let result: Result<Tensor, BinError> = binio::from_bytes(&s.into_bytes());
    assert!(
        matches!(result, Err(BinError::InvalidData(_))),
        "got {result:?}"
    );
}

#[test]
fn wrong_struct_header_is_rejected() {
    // A bare f32 is not a Tensor: the struct header byte will not match.
    let bytes = binio::to_bytes(&1.0f32).unwrap();
    let result: Result<Tensor, BinError> = binio::from_bytes(&bytes);
    assert!(result.is_err());
}

#[test]
fn corrupt_byte_never_panics() {
    let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[4, 6]).unwrap();
    let bytes = binio::to_bytes(&t).unwrap();
    for i in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xA5;
        // Either decodes to some tensor (flipped data bits) or errors —
        // but must never panic or mis-shape.
        if let Ok(back) = binio::from_bytes::<Tensor>(&corrupted) {
            assert_eq!(back.len(), back.shape().volume());
        }
    }
}
