//! Dependency-free data-parallel dispatch for the VITAL workspace.
//!
//! This crate is the threading substrate underneath the packed GEMM in the
//! `tensor` crate and the batched inference paths above it. It deliberately
//! avoids external dependencies (no rayon, no crossbeam): everything is built
//! on [`std::thread::scope`], which lets worker threads borrow the caller's
//! stack data without `'static` bounds or reference counting.
//!
//! # Determinism contract
//!
//! Every helper in this crate guarantees **byte-identical results regardless
//! of the thread count**, including the single-threaded fallback:
//!
//! * Work is split into *chunks* whose boundaries depend only on the input
//!   length and the requested chunk size — never on the number of workers.
//! * Each chunk is processed start-to-finish by exactly one worker with the
//!   same sequential code the single-threaded path runs, so floating-point
//!   accumulation order inside a chunk never changes.
//! * Chunks write disjoint outputs (`parallel_chunks_mut` hands each worker a
//!   non-overlapping `&mut` sub-slice; [`parallel_map`] writes each result
//!   into its input's slot), so no reduction order is introduced across
//!   chunks.
//!
//! Consequently `VITAL_THREADS=1` and `VITAL_THREADS=16` produce the same
//! bits, and CI runs the test suite under both to enforce it.
//!
//! # Thread-count resolution
//!
//! The worker count for a call is resolved in order from:
//!
//! 1. a scoped [`with_threads`] override (used by tests and benchmarks),
//! 2. the `VITAL_THREADS` environment variable (`0` or unparsable values are
//!    ignored),
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 short-circuits to an inline loop on the calling
//! thread — no threads are spawned, so single-core machines and
//! `VITAL_THREADS=1` runs pay zero synchronisation overhead.
//!
//! # Example
//!
//! ```
//! let mut data = vec![0u64; 1000];
//! parallel::parallel_chunks_mut(&mut data, 128, |chunk_index, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (chunk_index * 128 + i) as u64;
//!     }
//! });
//! assert_eq!(data[999], 999);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Scoped thread-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `VITAL_THREADS` is read once per process; the scoped override exists for
/// callers (tests, benchmarks) that need to vary the count afterwards.
fn env_threads() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("VITAL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The number of worker threads data-parallel helpers will use, resolved from
/// the [`with_threads`] override, then `VITAL_THREADS`, then the machine's
/// available parallelism (falling back to 1).
pub fn num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` with the thread count pinned to `threads` on the current thread
/// (nested calls shadow outer ones; the previous value is restored on exit,
/// including on panic).
///
/// This is how the GEMM property tests compare 1-, 2- and N-thread runs
/// without mutating process-global state.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and calls `f(chunk_index, chunk)` on every chunk,
/// distributing chunks across worker threads.
///
/// Chunk boundaries depend only on `data.len()` and `chunk_len`, and each
/// chunk is processed sequentially by one worker, so results are identical
/// for every thread count (see the crate-level determinism contract).
///
/// A `chunk_len` of 0 is treated as `data.len()` (one chunk).
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk_len = if chunk_len == 0 {
        data.len()
    } else {
        chunk_len
    };
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = num_threads().min(n_chunks);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Deal chunks round-robin onto workers *before* spawning: assignment is
    // static, so there is no queue contention on the hot path and the borrow
    // checker can see the `&mut` sub-slices are disjoint.
    let mut lanes: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        lanes[i % workers].push((i, chunk));
    }
    let f = &f;
    std::thread::scope(|scope| {
        for lane in lanes {
            scope.spawn(move || {
                for (i, chunk) in lane {
                    f(i, chunk);
                }
            });
        }
    });
}

/// Applies `f` to every element of `items` across worker threads, returning
/// the results in input order.
///
/// Each result is written into its own pre-allocated slot, so ordering (and
/// therefore determinism) does not depend on worker scheduling.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    // Chunk the index space so neighbouring items stay on one worker (better
    // locality than a per-item round-robin for the short feature vectors the
    // localizers map over).
    let chunk = items.len().div_ceil(num_threads().max(1)).max(1);
    parallel_chunks_mut(&mut out, chunk, |chunk_index, slots| {
        let base = chunk_index * chunk;
        for (offset, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(&items[base + offset]));
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot filled by its chunk"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = num_threads();
        with_threads(3, || {
            assert_eq!(num_threads(), 3);
            with_threads(1, || assert_eq!(num_threads(), 1));
            assert_eq!(num_threads(), 3);
        });
        assert_eq!(num_threads(), outside);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        with_threads(0, || assert_eq!(num_threads(), 1));
    }

    #[test]
    fn chunks_cover_every_element_exactly_once() {
        for threads in [1, 2, 5] {
            with_threads(threads, || {
                let mut data = vec![0u32; 103];
                parallel_chunks_mut(&mut data, 10, |_, chunk| {
                    for v in chunk {
                        *v += 1;
                    }
                });
                assert!(data.iter().all(|&v| v == 1), "threads={threads}");
            });
        }
    }

    #[test]
    fn chunk_indices_match_offsets() {
        let mut data = vec![0usize; 57];
        parallel_chunks_mut(&mut data, 8, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = i * 8 + j;
            }
        });
        let expect: Vec<usize> = (0..57).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn zero_chunk_len_means_single_chunk() {
        let mut data = vec![1u8; 9];
        parallel_chunks_mut(&mut data, 0, |i, chunk| {
            assert_eq!(i, 0);
            assert_eq!(chunk.len(), 9);
            for v in chunk {
                *v = 2;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut data: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut data, 4, |_, _| panic!("must not be called"));
        assert!(parallel_map(&data, |_: &u8| 1u8).is_empty());
    }

    #[test]
    fn map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * v).collect();
        for threads in [1, 2, 4, 9] {
            let got = with_threads(threads, || parallel_map(&items, |v| v * v));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        // A float accumulation whose per-chunk order must not change.
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut data = vec![0.0f32; 1024];
                parallel_chunks_mut(&mut data, 100, |i, chunk| {
                    let mut acc = 0.1f32 * (i as f32 + 1.0);
                    for v in chunk.iter_mut() {
                        acc = acc * 1.000_1 + 0.000_3;
                        *v = acc;
                    }
                });
                data
            })
        };
        let single = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(single, run(threads), "threads={threads}");
        }
    }
}
