//! Test-scope and function-boundary resolution over a token stream.
//!
//! The rules only police *production* code: anything inside a
//! `#[cfg(test)]` item, a `#[test]` function, or a `mod tests { … }` block
//! is exempt (tests unwrap and sleep on purpose), as is any file under a
//! crate's `tests/` directory. This module computes, per token, whether it
//! is test-scoped, and extracts every `fn` with its body token range so
//! the per-function rules (lock order, hot-path allocations) know where a
//! function starts and ends.

use crate::lexer::{Token, TokenKind};

/// A function found in the token stream.
#[derive(Debug, Clone)]
pub struct FunctionSpan {
    /// The function's name.
    pub name: String,
    /// Index range of the body tokens, *between* (and excluding) the
    /// braces.
    pub body: std::ops::Range<usize>,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is test-scoped.
    pub in_test: bool,
}

/// Token stream plus the scoping facts the rules need.
pub struct ScopedTokens {
    /// The lexed tokens.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is `true` when token `i` is inside test scope.
    pub test_mask: Vec<bool>,
    /// Every function (including test-scoped ones — callers filter).
    pub functions: Vec<FunctionSpan>,
}

/// Scopes `tokens`. When `whole_file_is_test` is set (integration-test
/// files under `tests/`), every token is test-scoped.
pub fn scope(tokens: Vec<Token>, whole_file_is_test: bool) -> ScopedTokens {
    let mut test_mask = vec![whole_file_is_test; tokens.len()];
    if !whole_file_is_test {
        mark_test_regions(&tokens, &mut test_mask);
    }
    let functions = extract_functions(&tokens, &test_mask);
    ScopedTokens {
        tokens,
        test_mask,
        functions,
    }
}

/// Marks the token regions covered by `#[cfg(test)]` / `#[test]`
/// attributes and `mod tests { … }` blocks.
///
/// An attribute containing the bare identifier `test` marks the *next*
/// item; the marked region is that item's brace-delimited body (a
/// brace-less item such as an annotated `use` consumes the attribute
/// without opening a region). Regions nest by brace depth.
fn mark_test_regions(tokens: &[Token], mask: &mut [bool]) {
    let mut depth: i32 = 0;
    // Depths at which an active test region closes; non-empty == in test.
    let mut regions: Vec<i32> = Vec::new();
    // A test attribute (or `mod tests`) is waiting for its item's `{`.
    let mut pending = false;
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        match &tok.kind {
            TokenKind::Punct('#') => {
                // Attribute: `#[…]` or `#![…]`. Scan to the matching `]`,
                // looking for the bare ident `test` (covers `#[test]`,
                // `#[cfg(test)]`, `#[cfg(all(test, …))]`).
                let mut j = i + 1;
                if matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct('!'))) {
                    j += 1;
                }
                if matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct('['))) {
                    let mut brackets = 0i32;
                    let mut has_test = false;
                    let mut end = j;
                    for (k, t) in tokens.iter().enumerate().skip(j) {
                        match &t.kind {
                            TokenKind::Punct('[') => brackets += 1,
                            TokenKind::Punct(']') => {
                                brackets -= 1;
                                if brackets == 0 {
                                    end = k;
                                    break;
                                }
                            }
                            TokenKind::Ident(id) if id == "test" => has_test = true,
                            _ => {}
                        }
                    }
                    if has_test {
                        pending = true;
                    }
                    // Mark the attribute's own tokens if already in a
                    // region, then skip past it.
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = *m || !regions.is_empty();
                    }
                    i = end + 1;
                    continue;
                }
            }
            TokenKind::Ident(id) if id == "mod" => {
                // `mod tests { … }` (any attribute stack handled above).
                if let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) {
                    if name == "tests" {
                        pending = true;
                    }
                }
            }
            TokenKind::Punct('{') => {
                depth += 1;
                if pending {
                    regions.push(depth);
                    pending = false;
                }
            }
            TokenKind::Punct('}') => {
                // The closing brace still belongs to the region.
                mask[i] = mask[i] || !regions.is_empty();
                if regions.last() == Some(&depth) {
                    regions.pop();
                }
                depth -= 1;
                i += 1;
                continue;
            }
            TokenKind::Punct(';')
                // A brace-less item (e.g. `#[cfg(test)] use …;`) consumes
                // the pending attribute without opening a region.
                if pending && regions.is_empty() => {
                    pending = false;
                }
            _ => {}
        }
        mask[i] = mask[i] || !regions.is_empty();
        i += 1;
    }
}

/// Extracts every `fn name … { body }`, including nested ones.
fn extract_functions(tokens: &[Token], mask: &[bool]) -> Vec<FunctionSpan> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.ident() != Some("fn") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        // Find the body `{` (or a `;` first for body-less trait methods),
        // tracking parens/brackets so a default argument can't fool us.
        let mut j = i + 2;
        let mut nesting = 0i32;
        let mut body_open = None;
        while let Some(t) = tokens.get(j) {
            match &t.kind {
                TokenKind::Punct('(' | '[') => nesting += 1,
                TokenKind::Punct(')' | ']') => nesting -= 1,
                TokenKind::Punct(';') if nesting == 0 => break,
                TokenKind::Punct('{') if nesting == 0 => {
                    body_open = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            continue;
        };
        // Matching close brace.
        let mut depth = 0i32;
        let mut close = open;
        for (k, t) in tokens.iter().enumerate().skip(open) {
            match &t.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(FunctionSpan {
            name: name.to_string(),
            body: (open + 1)..close,
            line: tok.line,
            in_test: mask[i],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scoped(src: &str) -> ScopedTokens {
        scope(lex(src), false)
    }

    fn ident_in_test(s: &ScopedTokens, name: &str) -> bool {
        s.tokens
            .iter()
            .zip(&s.test_mask)
            .any(|(t, &m)| t.ident() == Some(name) && m)
    }

    #[test]
    fn cfg_test_module_is_test_scoped() {
        let s = scoped("fn prod() { a(); }\n#[cfg(test)]\nmod t { fn check() { b(); } }");
        assert!(!ident_in_test(&s, "a"));
        assert!(ident_in_test(&s, "b"));
    }

    #[test]
    fn mod_tests_is_test_scoped_without_attribute() {
        let s = scoped("mod tests { fn check() { b(); } }\nfn prod() { a(); }");
        assert!(ident_in_test(&s, "b"));
        assert!(!ident_in_test(&s, "a"));
    }

    #[test]
    fn test_attribute_on_fn() {
        let s = scoped("#[test]\nfn check() { b(); }\nfn prod() { a(); }");
        assert!(ident_in_test(&s, "b"));
        assert!(!ident_in_test(&s, "a"));
    }

    #[test]
    fn cfg_test_use_does_not_open_a_region() {
        let s = scoped("#[cfg(test)]\nuse std::sync::mpsc;\nfn prod() { a(); }");
        assert!(!ident_in_test(&s, "a"));
    }

    #[test]
    fn stacked_attributes_keep_the_pending_mark() {
        let s =
            scoped("#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn f() { b(); } }\nfn p() { a(); }");
        assert!(ident_in_test(&s, "b"));
        assert!(!ident_in_test(&s, "a"));
    }

    #[test]
    fn code_after_tests_module_is_production() {
        let s = scoped("#[cfg(test)]\nmod tests { fn f() { b(); } }\nfn late() { c(); }");
        assert!(ident_in_test(&s, "b"));
        assert!(!ident_in_test(&s, "c"));
    }

    #[test]
    fn functions_are_extracted_with_bodies() {
        let s = scoped("fn outer(x: usize) -> usize { inner(); x }\nfn two() {}");
        let names: Vec<_> = s.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "two"]);
        let outer = &s.functions[0];
        let body: Vec<_> = s.tokens[outer.body.clone()]
            .iter()
            .filter_map(|t| t.ident())
            .collect();
        assert_eq!(body, vec!["inner", "x"]);
    }

    #[test]
    fn test_functions_are_flagged() {
        let s = scoped("#[cfg(test)]\nmod tests { fn helper() {} }\nfn prod() {}");
        let helper = s.functions.iter().find(|f| f.name == "helper");
        let prod = s.functions.iter().find(|f| f.name == "prod");
        assert!(helper.is_some_and(|f| f.in_test));
        assert!(prod.is_some_and(|f| !f.in_test));
    }

    #[test]
    fn whole_file_test_masks_everything() {
        let s = scope(lex("fn any() { a(); }"), true);
        assert!(ident_in_test(&s, "a"));
    }

    #[test]
    fn braces_in_char_literals_do_not_unbalance_regions() {
        let s =
            scoped("#[cfg(test)]\nmod t { fn f() { m.insert('{', 1); b(); } }\nfn p() { a(); }");
        assert!(ident_in_test(&s, "b"));
        assert!(!ident_in_test(&s, "a"));
    }
}
