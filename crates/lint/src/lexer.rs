//! A hand-rolled Rust lexer, sufficient for rule matching.
//!
//! The rules in this crate never need a full parse — they pattern-match on
//! token shapes (`.unwrap()` is `Punct('.') Ident("unwrap") Punct('(')
//! Punct(')')`) — but they *do* need lexing to be exact, because the
//! difference between a finding and a false positive is precisely the
//! difference between the identifier `unwrap` and the same nine characters
//! inside a string literal, a doc comment, or a `r#"…"#` raw string. The
//! lexer therefore handles the full set of Rust token ambiguities that
//! matter for that distinction:
//!
//! * string literals: plain, byte, raw (`r"…"`, `r#"…"#` with any number of
//!   hashes) and raw-byte, with escape handling in the non-raw forms;
//! * comments: line, **nested** block comments (`/* /* */ */` is one
//!   comment), and doc comments (`///`, `//!`, `/** */`) — all dropped from
//!   the token stream so their contents can never match a rule;
//! * `'a'` char literals vs `'a` lifetimes, using the same lookahead rule
//!   as rustc: a quote followed by an identifier not closed by another
//!   quote is a lifetime;
//! * numeric literals with underscores, type suffixes, and hex/octal/binary
//!   prefixes.
//!
//! Every token carries its 1-based line and column for diagnostics.

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#match` → `match`).
    Ident(String),
    /// A lifetime such as `'a` (without the quote).
    Lifetime(String),
    /// A character literal such as `'x'` or `'\n'`.
    CharLit,
    /// Any string literal form; the payload is the raw source slice
    /// *between* the delimiters (escapes are not processed — rules only
    /// need to know the region is a literal, never its decoded value).
    StrLit(String),
    /// An integer literal, stored as written (`0`, `1_000`, `0xff`).
    IntLit(String),
    /// A float literal, stored as written.
    FloatLit(String),
    /// A single punctuation character (`.`, `(`, `{`, `#`, …). Multi-char
    /// operators arrive as consecutive tokens, which is all the rules need.
    Punct(char),
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes `source` into tokens, dropping comments and whitespace.
///
/// The lexer never fails: malformed input (an unterminated string, a stray
/// byte) degrades to best-effort tokens rather than an error, because a
/// lint pass must keep walking the rest of the workspace even if one file
/// confuses it — the compiler, not the linter, owns syntax errors.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    source: std::marker::PhantomData<&'s ()>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            source: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: u32, col: u32) {
        self.tokens.push(Token { kind, line, col });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_lit(line, col),
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string_lit(line, col);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_lit(line, col);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.bump();
                    self.char_lit_body(line, col);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string_lit(line, col);
                }
                '\'' => self.quote(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line, col);
                }
            }
        }
        self.tokens
    }

    /// Whether `r`/`br` at the current position starts a raw string (as
    /// opposed to an identifier such as `r#match` raw identifiers or plain
    /// `radius`): `r` followed by `"` or by hashes then `"`.
    fn raw_string_ahead(&self, from: usize) -> bool {
        let mut i = from;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        // Consume the opening `/*`, then track nesting depth: Rust block
        // comments nest, so `/* /* */ */` is one comment.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string_lit(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '"' => {
                    self.bump();
                    break;
                }
                '\\' => {
                    // Keep the escape verbatim; rules never decode strings.
                    content.push(c);
                    self.bump();
                    if let Some(escaped) = self.bump() {
                        content.push(escaped);
                    }
                }
                _ => {
                    content.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::StrLit(content), line, col);
    }

    /// Lexes a raw string with the leading `r`/`br` already consumed.
    fn raw_string_lit(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut content = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // A closing quote must be followed by exactly `hashes`
                // hashes; otherwise the quote is part of the content.
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break 'outer;
                }
            }
            content.push(c);
            self.bump();
        }
        self.push(TokenKind::StrLit(content), line, col);
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime) at a `'`.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            // `'\n'`, `'\''` … — always a char literal.
            Some('\\') => self.char_lit_body(line, col),
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // `'a'` is a char literal; `'a` / `'static` (identifier not
                // closed by a quote) is a lifetime. Scan the identifier and
                // look at what follows.
                let mut len = 0usize;
                while matches!(self.peek(len), Some(c) if c == '_' || c.is_alphanumeric()) {
                    len += 1;
                }
                if len == 1 && self.peek(1) == Some('\'') {
                    self.char_lit_body(line, col);
                } else {
                    let name: String = (0..len).filter_map(|_| self.bump()).collect();
                    self.push(TokenKind::Lifetime(name), line, col);
                }
            }
            // `'(' …: a char literal of punctuation, e.g. `'{'`.
            Some(_) => self.char_lit_body(line, col),
            None => self.push(TokenKind::Punct('\''), line, col),
        }
    }

    /// Consumes a char literal body up to and including the closing quote
    /// (the opening quote is already consumed).
    fn char_lit_body(&mut self, line: u32, col: u32) {
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        self.push(TokenKind::CharLit, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut is_float = false;
        // Hex/octal/binary prefix.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                text.push(self.bump().unwrap_or('0'));
            }
            self.push(TokenKind::IntLit(text), line, col);
            return;
        }
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_ascii_digit() || c == '_' => {
                    text.push(c);
                    self.bump();
                }
                // A dot is part of the number only when followed by a digit
                // or standing alone (`1.`), not in `1.max(2)` or `0..n`.
                '.' if !is_float && self.peek(1).is_none_or(|n| !n.is_alphabetic() && n != '.') => {
                    is_float = true;
                    text.push(c);
                    self.bump();
                }
                'e' | 'E' if matches!(self.peek(1), Some(c) if c.is_ascii_digit() || c == '+' || c == '-') =>
                {
                    is_float = true;
                    text.push(c);
                    self.bump();
                    text.push(self.bump().unwrap_or('0'));
                }
                // Type suffix (`1u32`, `1.0f32`).
                c if c.is_alphabetic() => {
                    while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                        self.bump();
                    }
                    break;
                }
                _ => break,
            }
        }
        let kind = if is_float {
            TokenKind::FloatLit(text)
        } else {
            TokenKind::IntLit(text)
        };
        self.push(kind, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Raw identifier prefix `r#name` — strip the prefix so rules see
        // the plain name.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(text), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_method_call_shape() {
        let tokens = lex("x.unwrap()");
        let kinds: Vec<_> = tokens.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &TokenKind::Ident("x".into()),
                &TokenKind::Punct('.'),
                &TokenKind::Ident("unwrap".into()),
                &TokenKind::Punct('('),
                &TokenKind::Punct(')'),
            ]
        );
    }

    #[test]
    fn unwrap_inside_string_literal_is_a_string() {
        let tokens = lex(r#"let s = "please .unwrap() me";"#);
        assert!(!idents(r#"let s = "please .unwrap() me";"#).contains(&"unwrap".to_string()));
        assert!(tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::StrLit(s) if s.contains("unwrap"))));
    }

    #[test]
    fn unwrap_inside_raw_string_with_hashes_is_a_string() {
        let src = r###"let s = r#"quotes " and .unwrap() and "# done"#;"###;
        // The raw string ends at `"#`, so `done` is an identifier but the
        // first `.unwrap()` is not.
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
    }

    #[test]
    fn raw_string_with_two_hashes() {
        let src = r####"x(r##"a "# b .unwrap()"##)"####;
        assert!(!idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert!(!idents(r#"f(b"panic!()")"#).contains(&"panic".to_string()));
        let src = r###"f(br#"expect("x")"#)"###;
        assert!(!idents(src).contains(&"expect".to_string()));
    }

    #[test]
    fn nested_block_comments_are_dropped() {
        let src = "a /* outer /* inner .unwrap() */ still comment */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn line_and_doc_comments_are_dropped() {
        let src = "/// call .unwrap() here\n//! or .expect(\"x\")\n// panic!()\nfn ok() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "ok"]);
    }

    #[test]
    fn block_doc_comments_are_dropped() {
        let src = "/** docs with .unwrap() */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        // 'a' is a char literal; 'a in a generic list is a lifetime.
        let tokens = lex("let c = 'a'; fn f<'a>(x: &'a str) {}");
        let chars = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .count();
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(chars, 1);
        assert_eq!(lifetimes, vec!["a", "a"]);
    }

    #[test]
    fn static_lifetime_and_escaped_chars() {
        let tokens = lex(r"let s: &'static str = x; let q = '\''; let n = '\n';");
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["static"]);
        let chars = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn punctuation_char_literal() {
        let tokens = lex("m.insert('{', 1)");
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::CharLit)
                .count(),
            1
        );
        // The brace inside the char literal must not unbalance anything.
        assert!(!tokens.iter().any(|t| t.is_punct('{')));
    }

    #[test]
    fn byte_char_literal() {
        let tokens = lex("self.expect_byte(b'{')?");
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::CharLit)
                .count(),
            1
        );
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let tokens = lex("0..n; 1_000u64; 0xff; 1.5e-3; x.0");
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::IntLit("1_000".into())));
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::IntLit("0xff".into())));
        assert!(tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::FloatLit(f) if f.starts_with("1.5"))));
        // `x.0` is ident, dot, int — a tuple index, not a float.
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::IntLit("0".into())));
    }

    #[test]
    fn method_call_on_int_literal_is_not_a_float() {
        let ids = idents("1.max(2)");
        assert_eq!(ids, vec!["max"]);
    }

    #[test]
    fn raw_identifier_is_stripped() {
        assert_eq!(idents("r#match"), vec!["match"]);
    }

    #[test]
    fn positions_are_one_based() {
        let tokens = lex("a\n  b");
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_does_not_hang() {
        let tokens = lex("let s = \"oops");
        assert!(tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::StrLit(s) if s == "oops")));
    }
}
