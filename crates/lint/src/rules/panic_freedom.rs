//! Panic-freedom on the serve request path.
//!
//! A panic in a dispatch worker kills the worker; a panic in a handler
//! thread kills the connection. The crates on the request path
//! (`serve`, `jsonio`, `binio` — configured, not hard-coded) must
//! therefore surface failures as typed errors, never as `unwrap()` /
//! `expect()` / panic macros / literal slice indexing. Test code is
//! exempt (the scoper strips it); justified production exceptions —
//! poisoned-lock aborts, startup-only code — go on the allowlist in
//! `ci/lint-rules.toml` with a reason each.

use crate::analyze::FileContext;
use crate::config::RulesConfig;
use crate::lexer::TokenKind;
use crate::report::{Finding, Rule};

/// Runs the rule over one file. Returns nothing for files outside the
/// configured crates.
pub fn check(ctx: &FileContext<'_>, config: &RulesConfig) -> Vec<Finding> {
    if !config
        .panic_crates
        .iter()
        .any(|c| ctx.path == *c || ctx.path.starts_with(&format!("{c}/")))
    {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let tokens = &ctx.scoped.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if ctx.scoped.test_mask[i] {
            continue;
        }
        match &tok.kind {
            // `.unwrap(` / `.expect(` — a method call on a receiver.
            TokenKind::Ident(name)
                if config.panic_methods.iter().any(|m| m == name)
                    && i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                findings.push(ctx.finding(
                    Rule::PanicFreedom,
                    tok,
                    format!(
                        "`.{name}()` can panic the request path; propagate a typed error \
                         (or allowlist with a reason in ci/lint-rules.toml)"
                    ),
                ));
            }
            // `panic!` / `todo!` / `unimplemented!`.
            TokenKind::Ident(name)
                if config.panic_macros.iter().any(|m| m == name)
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                findings.push(ctx.finding(
                    Rule::PanicFreedom,
                    tok,
                    format!("`{name}!` is banned on the request path; return an error instead"),
                ));
            }
            // `expr[<int>]` — literal indexing panics on short slices.
            TokenKind::Punct('[')
                if config.panic_literal_index
                    && matches!(
                        tokens.get(i + 1).map(|t| &t.kind),
                        Some(TokenKind::IntLit(_))
                    )
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(']'))
                    && i > 0
                    && matches!(
                        &tokens[i - 1].kind,
                        TokenKind::Ident(_) | TokenKind::Punct(')' | ']' | '?')
                    ) =>
            {
                findings.push(
                    ctx.finding(
                        Rule::PanicFreedom,
                        tok,
                        "indexing by integer literal can panic on short input; use \
                     `.first()`/`.get()` or destructure"
                            .to_string(),
                    ),
                );
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::analyze::{analyze, SourceFile};
    use crate::config::RulesConfig;

    fn config() -> RulesConfig {
        RulesConfig::from_toml(
            r#"
[panic_freedom]
crates = ["crates/serve"]
banned_methods = ["unwrap", "expect"]
banned_macros = ["panic", "todo", "unimplemented"]
ban_literal_index = true
"#,
        )
        .expect("test config parses")
    }

    fn run(content: &str) -> Vec<String> {
        let files = vec![SourceFile {
            path: "crates/serve/src/probe.rs".into(),
            content: content.into(),
        }];
        analyze(&files, &config())
            .findings
            .into_iter()
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn unwrap_in_production_code_is_flagged() {
        let messages = run("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(messages.len(), 1, "{messages:?}");
        assert!(messages[0].contains("unwrap"));
    }

    #[test]
    fn expect_and_macros_are_flagged() {
        let messages = run(
            "fn f(x: Option<u32>) -> u32 { let _ = x.expect(\"boom\"); todo!() }\nfn g() { panic!(\"no\") }",
        );
        assert_eq!(messages.len(), 3, "{messages:?}");
    }

    #[test]
    fn literal_index_is_flagged_but_named_constant_is_not() {
        let messages = run("fn f(xs: &[u32], i: usize) -> u32 { xs[0] + xs[i] }");
        assert_eq!(messages.len(), 1, "{messages:?}");
        assert!(messages[0].contains("literal"));
    }

    #[test]
    fn array_literals_and_types_are_not_index_expressions() {
        let messages = run("fn f() -> [u32; 2] { let a = [0, 1]; a }");
        assert!(messages.is_empty(), "{messages:?}");
    }

    #[test]
    fn test_code_and_strings_and_comments_are_exempt() {
        let src = r###"
fn prod() -> &'static str { "call .unwrap() and panic!" }
/// Docs may say .unwrap() freely.
fn doc_holder() {}
// comment: x.expect("fine")
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("test code may"); }
}
"###;
        assert!(run(src).is_empty());
    }

    #[test]
    fn raw_string_unwrap_is_exempt() {
        let src = r####"fn f() -> &'static str { r#"x.unwrap() inside raw"# }"####;
        assert!(run(src).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let files = vec![SourceFile {
            path: "crates/nn/src/param.rs".into(),
            content: "fn f(x: Option<u32>) -> u32 { x.unwrap() }".into(),
        }];
        assert!(analyze(&files, &config()).findings.is_empty());
    }

    #[test]
    fn integration_test_files_are_exempt() {
        let files = vec![SourceFile {
            path: "crates/serve/tests/integration.rs".into(),
            content: "fn f(x: Option<u32>) -> u32 { x.unwrap() }".into(),
        }];
        assert!(analyze(&files, &config()).findings.is_empty());
    }
}
