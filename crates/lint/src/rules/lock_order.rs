//! Lock-order / deadlock detection.
//!
//! For every function the rule extracts each `Mutex`/`RwLock` acquisition
//! — a no-argument `.lock()`, `.read()` or `.write()` call — and tracks
//! which guards are still live when the next acquisition happens. Guard
//! liveness follows the shapes the workspace actually uses:
//!
//! * `let g = x.lock()…;` — live until the end of the enclosing block,
//!   an explicit `drop(g)`, or (for `if let`/`while let`) the end of the
//!   attached block;
//! * a lock taken inside a larger expression statement
//!   (`*x.lock()… = v;`) — a temporary, live to the end of the statement.
//!
//! Every "guard of class A live while class B is acquired" observation
//! becomes an A→B edge in one workspace-wide graph whose nodes are the
//! *lock classes* named in `ci/lint-rules.toml` (`nn::Param::value`,
//! `serve::JobQueue::state`, …; unnamed receivers get a per-file class).
//! Two things are findings:
//!
//! * a **cycle** in the graph — two functions acquiring the same locks in
//!   opposite orders deadlock under concurrency, which is exactly the
//!   failure mode N dispatch workers make probable; a self-loop (same
//!   class re-acquired while held) is the length-1 case and deadlocks
//!   even single-threaded with `Mutex`;
//! * a **`.write()` while any other guard is live** — a writer queued
//!   behind the held guard blocks every later reader, so even cycle-free
//!   write-while-holding is a serving-latency hazard.

use crate::analyze::FileContext;
use crate::config::RulesConfig;
use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, LockAcquisition, LockEdge, LockGraph, Rule};

/// A live guard inside one function walk.
struct Guard {
    /// Binding names (empty for statement temporaries).
    names: Vec<String>,
    /// Lock class of the acquisition that produced it.
    class: String,
    /// Brace depth the guard dies below.
    depth: i32,
    /// Statement temporaries die at the next statement boundary.
    temporary: bool,
}

/// Scans one file's functions, appending acquisitions/edges to `graph`
/// and returning write-while-holding findings.
pub fn check(ctx: &FileContext<'_>, config: &RulesConfig, graph: &mut LockGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for function in &ctx.scoped.functions {
        if function.in_test {
            continue;
        }
        walk_function(ctx, config, function, graph, &mut findings);
    }
    findings
}

fn walk_function(
    ctx: &FileContext<'_>,
    config: &RulesConfig,
    function: &crate::scope::FunctionSpan,
    graph: &mut LockGraph,
    findings: &mut Vec<Finding>,
) {
    let tokens = &ctx.scoped.tokens;
    let body = function.body.clone();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    // Index of the `let` keyword in the current statement, if any.
    let mut stmt_let: Option<usize> = None;
    // Guards bound in the current statement (for if-let depth attachment).
    let mut stmt_new_guards: Vec<usize> = Vec::new();

    let mut i = body.start;
    while i < body.end {
        let tok = &tokens[i];
        match &tok.kind {
            TokenKind::Punct('{') => {
                // An `if let Ok(g) = x.lock() {` binding lives only inside
                // the attached block — re-home its guards to the block's
                // depth. A `let … else {` binding survives the else block,
                // so it keeps the outer depth.
                let if_let_block = stmt_let.is_some()
                    && tokens.get(i.wrapping_sub(1)).and_then(|t| t.ident()) != Some("else");
                depth += 1;
                if if_let_block {
                    for &g in &stmt_new_guards {
                        if let Some(guard) = guards.get_mut(g) {
                            guard.depth = depth;
                        }
                    }
                }
                end_statement(&mut guards, &mut stmt_let, &mut stmt_new_guards);
            }
            TokenKind::Punct('}') => {
                end_statement(&mut guards, &mut stmt_let, &mut stmt_new_guards);
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Punct(';') => {
                end_statement(&mut guards, &mut stmt_let, &mut stmt_new_guards);
            }
            TokenKind::Ident(id) if id == "let" => {
                stmt_let = Some(i);
            }
            // `drop(name)` (or `mem::drop(name)`) releases a guard early.
            TokenKind::Ident(id) if id == "drop" => {
                if let (Some(open), Some(TokenKind::Ident(name)), Some(close)) = (
                    tokens.get(i + 1),
                    tokens.get(i + 2).map(|t| &t.kind),
                    tokens.get(i + 3),
                ) {
                    if open.is_punct('(') && close.is_punct(')') {
                        let name = name.clone();
                        guards.retain(|g| !g.names.contains(&name));
                    }
                }
            }
            TokenKind::Ident(method)
                if matches!(method.as_str(), "lock" | "read" | "write")
                    && i > body.start
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(')')) =>
            {
                let class = classify(ctx, config, tokens, i - 1);
                graph.acquisitions.push(LockAcquisition {
                    class: class.clone(),
                    method: method.clone(),
                    file: ctx.path.to_string(),
                    line: tok.line,
                    function: function.name.clone(),
                });
                for guard in &guards {
                    let edge = LockEdge {
                        from: guard.class.clone(),
                        to: class.clone(),
                        file: ctx.path.to_string(),
                        line: tok.line,
                        function: function.name.clone(),
                    };
                    if !graph.edges.contains(&edge) {
                        graph.edges.push(edge);
                    }
                }
                if method == "write" {
                    if let Some(held) = guards.first() {
                        findings.push(ctx.finding(
                            Rule::LockOrder,
                            tok,
                            format!(
                                "`.write()` on {class} while a {} guard is live in `{}` — \
                                 a queued writer blocks all later readers; narrow the guard \
                                 scope or drop it first",
                                held.class, function.name
                            ),
                        ));
                    }
                }
                let names = stmt_let
                    .map(|l| binding_names(tokens, l, i))
                    .unwrap_or_default();
                guards.push(Guard {
                    temporary: names.is_empty(),
                    names,
                    class,
                    depth,
                });
                stmt_new_guards.push(guards.len() - 1);
            }
            _ => {}
        }
        i += 1;
    }
}

/// Ends the current statement: temporaries die, `let` state resets.
fn end_statement(
    guards: &mut Vec<Guard>,
    stmt_let: &mut Option<usize>,
    new_guards: &mut Vec<usize>,
) {
    guards.retain(|g| !g.temporary);
    *stmt_let = None;
    new_guards.clear();
}

/// Collects the binding names of `let <pattern> = …`: every
/// lowercase-start identifier between the `let` and its `=` (skipping
/// `mut`/`ref` and enum constructors such as `Ok`).
fn binding_names(tokens: &[Token], let_idx: usize, acq_idx: usize) -> Vec<String> {
    let mut names = Vec::new();
    for tok in &tokens[let_idx + 1..acq_idx] {
        match &tok.kind {
            TokenKind::Punct('=') => break,
            TokenKind::Ident(id)
                if id != "mut"
                    && id != "ref"
                    && id
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_') =>
            {
                names.push(id.clone());
            }
            _ => {}
        }
    }
    names
}

/// Resolves the receiver path ending at the `.` before the method name
/// (`self . 0 . value` → last segment `value`) to a lock class.
fn classify(
    ctx: &FileContext<'_>,
    config: &RulesConfig,
    tokens: &[Token],
    dot_idx: usize,
) -> String {
    // Walk back over `ident`/`.`/`<int>` to find the receiver's segments.
    let mut last_segment = None;
    let mut j = dot_idx;
    while j > 0 {
        j -= 1;
        match &tokens[j].kind {
            TokenKind::Ident(id) => {
                if last_segment.is_none() && id != "self" {
                    last_segment = Some(id.clone());
                }
            }
            TokenKind::IntLit(_) | TokenKind::Punct('.') => {}
            _ => break,
        }
        if last_segment.is_some() {
            break;
        }
    }
    let segment = last_segment.unwrap_or_else(|| "<expr>".to_string());
    for site in &config.lock_sites {
        if site.suffix == segment {
            return site.class.clone();
        }
    }
    // Unnamed lock: derive a stable per-file class so new lock sites show
    // up in the graph (and in cycles) without config changes.
    let stem = ctx
        .path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(ctx.path);
    format!("{stem}::{segment}")
}

/// Global pass once every file contributed its edges: any cycle in the
/// may-hold-while-acquiring graph is a deadlock risk.
pub fn cycle_findings(graph: &LockGraph) -> Vec<Finding> {
    let mut nodes: Vec<&str> = Vec::new();
    for edge in &graph.edges {
        for class in [edge.from.as_str(), edge.to.as_str()] {
            if !nodes.contains(&class) {
                nodes.push(class);
            }
        }
    }
    let mut findings = Vec::new();
    let mut reported: Vec<Vec<String>> = Vec::new();
    // DFS from every node; a back edge onto the current stack is a cycle.
    for &start in &nodes {
        let mut stack: Vec<&str> = vec![start];
        let mut path: Vec<&str> = Vec::new();
        let mut visited: Vec<&str> = Vec::new();
        dfs(start, graph, &mut path, &mut visited, &mut |cycle| {
            let mut key: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            key.sort();
            if reported.contains(&key) {
                return;
            }
            reported.push(key);
            // Anchor the finding at the edge that closes the cycle.
            let closing = graph
                .edges
                .iter()
                .find(|e| e.from == cycle[cycle.len() - 1] && e.to == cycle[0]);
            let chain = cycle.join(" -> ");
            let (file, line, function) = closing
                .map(|e| (e.file.clone(), e.line, e.function.clone()))
                .unwrap_or_default();
            findings.push(Finding {
                rule: Rule::LockOrder,
                file,
                line,
                col: 1,
                message: format!(
                    "lock-order cycle: {chain} -> {} (deadlock risk; closing edge in `{function}`)",
                    cycle[0]
                ),
                snippet: format!("acquisition order {chain} -> {}", cycle[0]),
            });
        });
        stack.clear();
    }
    findings
}

fn dfs<'g>(
    node: &'g str,
    graph: &'g LockGraph,
    path: &mut Vec<&'g str>,
    visited: &mut Vec<&'g str>,
    on_cycle: &mut impl FnMut(&[&str]),
) {
    if let Some(pos) = path.iter().position(|&n| n == node) {
        on_cycle(&path[pos..]);
        return;
    }
    if visited.contains(&node) {
        return;
    }
    visited.push(node);
    path.push(node);
    for edge in graph.edges.iter().filter(|e| e.from == node) {
        dfs(&edge.to, graph, path, visited, on_cycle);
    }
    path.pop();
}

#[cfg(test)]
mod tests {
    use crate::analyze::{analyze, SourceFile};
    use crate::config::RulesConfig;

    fn config() -> RulesConfig {
        RulesConfig::from_toml(
            r#"
[[lock_order.site]]
suffix = "alpha"
class = "test::Alpha"
kind = "Mutex"

[[lock_order.site]]
suffix = "beta"
class = "test::Beta"
kind = "RwLock"
"#,
        )
        .expect("test config parses")
    }

    fn run(content: &str) -> crate::report::Report {
        analyze(
            &[SourceFile {
                path: "crates/x/src/demo.rs".into(),
                content: content.into(),
            }],
            &config(),
        )
    }

    #[test]
    fn hold_while_acquiring_builds_an_edge() {
        let report =
            run("fn f(s: &S) { let a = s.alpha.lock().unwrap(); let b = s.beta.lock().unwrap(); }");
        assert_eq!(report.lock_graph.edges.len(), 1);
        let edge = &report.lock_graph.edges[0];
        assert_eq!(
            (edge.from.as_str(), edge.to.as_str()),
            ("test::Alpha", "test::Beta")
        );
        assert!(report.findings.is_empty(), "one-way order is fine");
    }

    #[test]
    fn inverted_orders_in_two_functions_are_a_cycle() {
        let report = run(
            "fn f(s: &S) { let a = s.alpha.lock().unwrap(); let b = s.beta.lock().unwrap(); }\n\
             fn g(s: &S) { let b = s.beta.lock().unwrap(); let a = s.alpha.lock().unwrap(); }",
        );
        let cycles: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.message.contains("cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{:?}", report.findings);
        assert!(cycles[0].message.contains("test::Alpha"));
        assert!(cycles[0].message.contains("test::Beta"));
    }

    #[test]
    fn dropping_the_guard_breaks_the_edge() {
        let report = run(
            "fn f(s: &S) { let a = s.alpha.lock().unwrap(); drop(a); let b = s.beta.lock().unwrap(); }\n\
             fn g(s: &S) { let b = s.beta.lock().unwrap(); }",
        );
        assert!(
            report.lock_graph.edges.is_empty(),
            "{:?}",
            report.lock_graph.edges
        );
    }

    #[test]
    fn same_lock_reacquired_while_held_is_a_self_cycle() {
        let report = run(
            "fn f(s: &S) { let a = s.alpha.lock().unwrap(); let b = s.alpha.lock().unwrap(); }",
        );
        assert!(
            report.findings.iter().any(|f| f.message.contains("cycle")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn write_while_holding_is_flagged_without_a_cycle() {
        let report = run(
            "fn f(s: &S) { let a = s.alpha.lock().unwrap(); let w = s.beta.write().unwrap(); }",
        );
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains(".write()")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn statement_temporaries_do_not_outlive_their_statement() {
        let report =
            run("fn f(s: &S) { *s.alpha.lock().unwrap() = 1; let b = s.beta.write().unwrap(); }");
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.lock_graph.edges.is_empty());
    }

    #[test]
    fn block_scope_ends_a_guard() {
        let report = run(
            "fn f(s: &S) { { let a = s.alpha.lock().unwrap(); } let b = s.beta.write().unwrap(); }",
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn if_let_guard_dies_with_its_block() {
        let report = run(
            "fn f(s: &S) { if let Ok(a) = s.alpha.lock() { use_it(&a); } let b = s.beta.write().unwrap(); }",
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn let_else_guard_survives_the_else_block() {
        let report = run(
            "fn f(s: &S) { let Ok(a) = s.alpha.lock() else { return; }; let b = s.beta.lock().unwrap(); }",
        );
        assert_eq!(
            report.lock_graph.edges.len(),
            1,
            "{:?}",
            report.lock_graph.edges
        );
    }

    #[test]
    fn io_read_write_with_arguments_is_not_an_acquisition() {
        let report = run("fn f(s: &mut TcpStream, buf: &mut [u8]) { s.read(buf).unwrap(); s.write(buf).unwrap(); }");
        assert!(report.lock_graph.acquisitions.is_empty());
    }

    #[test]
    fn unnamed_receivers_get_a_per_file_class() {
        let report = run("fn f(s: &S) { let g = s.mystery.lock().unwrap(); }");
        assert_eq!(report.lock_graph.acquisitions.len(), 1);
        assert_eq!(report.lock_graph.acquisitions[0].class, "demo::mystery");
    }

    #[test]
    fn test_functions_are_exempt() {
        let report = run(
            "#[cfg(test)]\nmod tests { fn f(s: &S) { let b = s.beta.lock().unwrap(); let a = s.alpha.lock().unwrap(); } }\n\
             fn g(s: &S) { let a = s.alpha.lock().unwrap(); let b = s.beta.lock().unwrap(); }",
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
