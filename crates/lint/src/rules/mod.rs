//! The five rule classes (see the crate docs for the catalog).

pub mod closure_map;
pub mod hot_path;
pub mod hygiene;
pub mod lock_order;
pub mod panic_freedom;
