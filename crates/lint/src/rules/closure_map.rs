//! Opaque-closure `map` bans in compiled-inference spans.
//!
//! The compute-graph compiler (`crates/graph`) fuses elementwise chains
//! only because every stage is a *named* op (`tensor::UnaryOp` /
//! `tensor::BinaryOp`) it can see through; a `tensor.map(|v| …)` closure
//! is opaque to shape inference and fusion, and silently forks the eager
//! reference away from what a compiled plan can express. Inside the
//! configured (file, function) spans — the inference stages ported to
//! compiled plans — `.map(<closure>)` and `.map_inplace(<closure>)` are
//! therefore banned; training-only gradient closures are carried as
//! `[[closure_map.allow]]` entries with a reason.
//!
//! Only literal closures (`.map(|…| …)`, `.map(move |…| …)`) are flagged:
//! a named-function argument such as `.map(gelu_grad_scalar)` still
//! points at one auditable definition and stays legal.

use crate::analyze::FileContext;
use crate::config::RulesConfig;
use crate::lexer::TokenKind;
use crate::report::{Finding, Rule};

/// Runs the rule over one file's configured spans.
pub fn check(ctx: &FileContext<'_>, config: &RulesConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let spans: Vec<_> = config
        .closure_spans
        .iter()
        .filter(|s| s.file == ctx.path)
        .collect();
    if spans.is_empty() {
        return findings;
    }
    for function in &ctx.scoped.functions {
        if function.in_test || !spans.iter().any(|s| s.functions.contains(&function.name)) {
            continue;
        }
        let tokens = &ctx.scoped.tokens;
        for i in function.body.clone() {
            let TokenKind::Ident(name) = &tokens[i].kind else {
                continue;
            };
            if !config.closure_methods.iter().any(|m| m == name)
                || !tokens[i - 1].is_punct('.')
                || !tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                continue;
            }
            // Opaque closure argument: `(|…` or `(move |…`.
            let opaque = match tokens.get(i + 2).map(|t| &t.kind) {
                Some(TokenKind::Punct('|')) => true,
                Some(TokenKind::Ident(kw)) => kw == "move",
                _ => false,
            };
            if opaque {
                findings.push(ctx.finding(
                    Rule::ClosureMap,
                    &tokens[i],
                    format!(
                        "opaque closure `.{name}(|…|)` inside compiled-inference function \
                         `{}` — use a named tensor op (UnaryOp/BinaryOp) the graph \
                         compiler can fuse",
                        function.name
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::analyze::{analyze, SourceFile};
    use crate::config::RulesConfig;

    fn config() -> RulesConfig {
        RulesConfig::from_toml(
            r#"
[closure_map]
banned_methods = ["map", "map_inplace"]

[[closure_map.span]]
file = "crates/x/src/infer.rs"
functions = ["forward_batch", "posterior"]
"#,
        )
        .expect("test config parses")
    }

    fn run(content: &str) -> Vec<String> {
        analyze(
            &[SourceFile {
                path: "crates/x/src/infer.rs".into(),
                content: content.into(),
            }],
            &config(),
        )
        .findings
        .into_iter()
        .map(|f| f.message)
        .collect()
    }

    #[test]
    fn closure_map_in_span_is_flagged() {
        let messages = run("fn forward_batch(x: &T) -> T { x.map(|v| v.max(0.0)) }");
        assert_eq!(messages.len(), 1, "{messages:?}");
        assert!(messages[0].contains("forward_batch"));
    }

    #[test]
    fn move_closure_and_map_inplace_are_flagged() {
        let messages = run("fn posterior(x: &mut T, c: f32) { x.map_inplace(move |v| v * c); }");
        assert_eq!(messages.len(), 1, "{messages:?}");
    }

    #[test]
    fn named_function_argument_is_legal() {
        let messages = run("fn forward_batch(x: &T) -> T { x.map(gelu_grad_scalar) }");
        assert!(messages.is_empty(), "{messages:?}");
    }

    #[test]
    fn functions_outside_the_span_are_free() {
        let messages = run("fn train_step(x: &T) -> T { x.map(|v| v * 2.0) }");
        assert!(messages.is_empty(), "{messages:?}");
    }

    #[test]
    fn test_scoped_closures_are_exempt() {
        let messages = run(
            "#[cfg(test)]\nmod tests {\n    fn forward_batch(x: &T) -> T { x.map(|v| v + 1.0) }\n}",
        );
        assert!(messages.is_empty(), "{messages:?}");
    }

    #[test]
    fn allowlisted_grad_closures_are_recorded_not_fatal() {
        let config = RulesConfig::from_toml(
            r#"
[closure_map]
banned_methods = ["map"]

[[closure_map.span]]
file = "crates/x/src/infer.rs"
functions = ["relu"]

[[closure_map.allow]]
file = "crates/x/src/infer.rs"
contains = "if v > 0.0"
reason = "training-only gradient closure; the inference forward uses UnaryOp::Relu"
"#,
        )
        .expect("config parses");
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/infer.rs".into(),
                content: "fn relu(x: &T) -> T { x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }) }"
                    .into(),
            }],
            &config,
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.allowed.len(), 1);
        assert!(report.stale_allows.is_empty());
    }
}
