//! Concurrency hygiene: unbounded-channel ban and guard-rail presence.
//!
//! Two checks:
//!
//! * **No unbounded `mpsc::channel`** in production code, workspace-wide.
//!   Every queue in the serve path is bounded by design (backpressure is
//!   what keeps overload a `503` instead of an OOM); an unbounded channel
//!   anywhere is a buffer that grows until the process dies. Use
//!   `mpsc::sync_channel` (or the serve `JobQueue`) instead.
//! * **Guard rails stay present** — the `#![deny(clippy::disallowed_types)]`
//!   attributes, the compile-time `Send + Sync` assertions from the
//!   shared-registry refactor, and the `#![forbid(unsafe_code)]` attributes
//!   are load-bearing: each is verified as a raw-text pattern so deleting
//!   one fails this lint even though the build would still pass.

use crate::analyze::FileContext;
use crate::config::RulesConfig;
use crate::report::{Finding, Rule};

/// Token-level checks (the channel ban) for one file.
pub fn check(ctx: &FileContext<'_>, config: &RulesConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !config.ban_unbounded_channel {
        return findings;
    }
    let tokens = &ctx.scoped.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if ctx.scoped.test_mask[i] {
            continue;
        }
        // `mpsc :: channel` — the unbounded constructor. `sync_channel`
        // is a different identifier, so bounded channels never match. An
        // optional turbofish (`mpsc::channel::<T>()`) is skipped so it
        // cannot be used to dodge the ban.
        if tok.ident() == Some("mpsc")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).and_then(|t| t.ident()) == Some("channel")
            && tokens
                .get(skip_turbofish(tokens, i + 4))
                .is_some_and(|t| t.is_punct('('))
        {
            findings.push(
                ctx.finding(
                    Rule::Hygiene,
                    tok,
                    "unbounded `mpsc::channel` is banned (no backpressure); use \
                 `mpsc::sync_channel` with an explicit capacity"
                        .to_string(),
                ),
            );
        }
    }
    findings
}

/// Returns the index past an optional `::<...>` turbofish starting at
/// `start`, tracking angle-bracket depth; `start` itself when absent.
fn skip_turbofish(tokens: &[crate::lexer::Token], start: usize) -> usize {
    if !(tokens.get(start).is_some_and(|t| t.is_punct(':'))
        && tokens.get(start + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(start + 2).is_some_and(|t| t.is_punct('<')))
    {
        return start;
    }
    let mut depth = 0usize;
    for (offset, tok) in tokens.iter().enumerate().skip(start + 2) {
        if tok.is_punct('<') {
            depth += 1;
        } else if tok.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return offset + 1;
            }
        }
    }
    tokens.len()
}

/// Raw-text checks for one file: `#![forbid(unsafe_code)]` and the
/// configured required patterns.
pub fn file_checks(path: &str, content: &str, config: &RulesConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if config.forbid_unsafe_files.iter().any(|f| f == path)
        && !content.contains("#![forbid(unsafe_code)]")
    {
        findings.push(Finding {
            rule: Rule::Hygiene,
            file: path.to_string(),
            line: 1,
            col: 1,
            message: "crate root must carry `#![forbid(unsafe_code)]` (future `unsafe` needs \
                      an explicit, reviewed opt-out here and in ci/lint-rules.toml)"
                .to_string(),
            snippet: String::new(),
        });
    }
    for required in config.required.iter().filter(|r| r.file == path) {
        if !content.contains(&required.contains) {
            findings.push(Finding {
                rule: Rule::Hygiene,
                file: path.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "guard rail missing: {} must contain `{}` ({})",
                    path, required.contains, required.why
                ),
                snippet: String::new(),
            });
        }
    }
    findings
}

/// Findings for guard-rail files that were not scanned at all (deleted or
/// moved — silently losing the file must not silently lose the check).
pub fn missing_files(scanned: &[String], config: &RulesConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut expected: Vec<&str> = config
        .forbid_unsafe_files
        .iter()
        .map(String::as_str)
        .collect();
    expected.extend(config.required.iter().map(|r| r.file.as_str()));
    expected.sort_unstable();
    expected.dedup();
    for file in expected {
        if !scanned.iter().any(|s| s == file) {
            findings.push(Finding {
                rule: Rule::Hygiene,
                file: file.to_string(),
                line: 0,
                col: 0,
                message: "guard-rail file is named in ci/lint-rules.toml but was not found in \
                          the workspace"
                    .to_string(),
                snippet: String::new(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::analyze::{analyze, SourceFile};
    use crate::config::RulesConfig;

    fn config() -> RulesConfig {
        RulesConfig::from_toml(
            r##"
[hygiene]
ban_unbounded_channel = true
forbid_unsafe_files = ["crates/x/src/lib.rs"]

[[hygiene.required]]
file = "crates/x/src/lib.rs"
contains = "#![deny(clippy::disallowed_types)]"
why = "Rc ban"
"##,
        )
        .expect("test config parses")
    }

    fn channel_only_config() -> RulesConfig {
        RulesConfig::from_toml("[hygiene]\nban_unbounded_channel = true\n")
            .expect("test config parses")
    }

    #[test]
    fn unbounded_channel_is_flagged_and_sync_channel_is_not() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/a.rs".into(),
                content:
                    "fn f() { let (a, b) = mpsc::channel(); let (c, d) = mpsc::sync_channel(1); }"
                        .into(),
            }],
            &channel_only_config(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("unbounded"));
    }

    #[test]
    fn turbofish_does_not_dodge_the_channel_ban() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/a.rs".into(),
                content: "fn f() { let pair = mpsc::channel::<Vec<u8>>(); }".into(),
            }],
            &channel_only_config(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    }

    #[test]
    fn channel_in_test_code_is_exempt() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/a.rs".into(),
                content: "#[cfg(test)]\nmod tests { fn f() { let (a, b) = mpsc::channel(); } }"
                    .into(),
            }],
            &channel_only_config(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn missing_forbid_and_guard_rail_are_flagged() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/lib.rs".into(),
                content: "// no attributes".into(),
            }],
            &config(),
        );
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    }

    #[test]
    fn present_guard_rails_pass() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/lib.rs".into(),
                content: "#![forbid(unsafe_code)]\n#![deny(clippy::disallowed_types)]\n".into(),
            }],
            &config(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn deleted_guard_rail_file_is_flagged() {
        let report = analyze(&[], &config());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("not found")),
            "{:?}",
            report.findings
        );
    }
}
