//! Concurrency hygiene: unbounded-channel ban, `unsafe` confinement, and
//! guard-rail presence.
//!
//! Three checks:
//!
//! * **No unbounded `mpsc::channel`** in production code, workspace-wide.
//!   Every queue in the serve path is bounded by design (backpressure is
//!   what keeps overload a `503` instead of an OOM); an unbounded channel
//!   anywhere is a buffer that grows until the process dies. Use
//!   `mpsc::sync_channel` (or the serve `JobQueue`) instead.
//! * **`unsafe` is confined** to the directories named in
//!   `unsafe_allowed_dirs` (the audited SIMD backend): any `unsafe` token
//!   in a production file elsewhere is a finding, and inside the allowed
//!   directories every `unsafe fn` / `unsafe {` must sit within a few
//!   lines of a `SAFETY`/`# Safety` comment explaining its contract.
//! * **Guard rails stay present** — the `#![deny(clippy::disallowed_types)]`
//!   attributes, the compile-time `Send + Sync` assertions from the
//!   shared-registry refactor, and the `#![forbid(unsafe_code)]` attributes
//!   are load-bearing: each is verified as a raw-text pattern so deleting
//!   one fails this lint even though the build would still pass.

use crate::analyze::FileContext;
use crate::config::RulesConfig;
use crate::report::{Finding, Rule};

/// Token-level checks (the channel ban and `unsafe` confinement) for one
/// file.
pub fn check(ctx: &FileContext<'_>, config: &RulesConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    // `unsafe` may only appear under the allowed directory prefixes (the
    // audited SIMD backend). The lexer resolves keywords to idents and
    // `unsafe_code` / `unsafe_op_in_unsafe_fn` are single distinct
    // identifiers, so matching the bare `unsafe` token is exact.
    let unsafe_confined = !config.unsafe_allowed_dirs.is_empty()
        && !config
            .unsafe_allowed_dirs
            .iter()
            .any(|dir| ctx.path.starts_with(dir.as_str()));
    let tokens = &ctx.scoped.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if ctx.scoped.test_mask[i] {
            continue;
        }
        if unsafe_confined && tok.ident() == Some("unsafe") {
            findings.push(
                ctx.finding(
                    Rule::Hygiene,
                    tok,
                    "`unsafe` is confined to the audited SIMD backend (see \
                 `unsafe_allowed_dirs` in ci/lint-rules.toml); route vector \
                 work through the safe `simd` crate API instead"
                        .to_string(),
                ),
            );
        }
        if !config.ban_unbounded_channel {
            continue;
        }
        // `mpsc :: channel` — the unbounded constructor. `sync_channel`
        // is a different identifier, so bounded channels never match. An
        // optional turbofish (`mpsc::channel::<T>()`) is skipped so it
        // cannot be used to dodge the ban.
        if tok.ident() == Some("mpsc")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).and_then(|t| t.ident()) == Some("channel")
            && tokens
                .get(skip_turbofish(tokens, i + 4))
                .is_some_and(|t| t.is_punct('('))
        {
            findings.push(
                ctx.finding(
                    Rule::Hygiene,
                    tok,
                    "unbounded `mpsc::channel` is banned (no backpressure); use \
                 `mpsc::sync_channel` with an explicit capacity"
                        .to_string(),
                ),
            );
        }
    }
    findings
}

/// Returns the index past an optional `::<...>` turbofish starting at
/// `start`, tracking angle-bracket depth; `start` itself when absent.
fn skip_turbofish(tokens: &[crate::lexer::Token], start: usize) -> usize {
    if !(tokens.get(start).is_some_and(|t| t.is_punct(':'))
        && tokens.get(start + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(start + 2).is_some_and(|t| t.is_punct('<')))
    {
        return start;
    }
    let mut depth = 0usize;
    for (offset, tok) in tokens.iter().enumerate().skip(start + 2) {
        if tok.is_punct('<') {
            depth += 1;
        } else if tok.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return offset + 1;
            }
        }
    }
    tokens.len()
}

/// Raw-text checks for one file: `#![forbid(unsafe_code)]` and the
/// configured required patterns.
pub fn file_checks(path: &str, content: &str, config: &RulesConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if config.forbid_unsafe_files.iter().any(|f| f == path)
        && !content.contains("#![forbid(unsafe_code)]")
    {
        findings.push(Finding {
            rule: Rule::Hygiene,
            file: path.to_string(),
            line: 1,
            col: 1,
            message: "crate root must carry `#![forbid(unsafe_code)]` (future `unsafe` needs \
                      an explicit, reviewed opt-out here and in ci/lint-rules.toml)"
                .to_string(),
            snippet: String::new(),
        });
    }
    // Inside the allowed `unsafe` directories, every `unsafe fn` /
    // `unsafe {` must carry a nearby SAFETY comment. The token stream
    // drops comments, so this is a raw-line scan: the justification may
    // sit on the same line or up to a comment block above the unsafe
    // site.
    if config
        .unsafe_allowed_dirs
        .iter()
        .any(|dir| path.starts_with(dir.as_str()))
    {
        let lines: Vec<&str> = content.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            // Strip a trailing line comment so prose mentioning `unsafe fn`
            // next to code does not register as an unsafe site.
            let code = trimmed.split("//").next().unwrap_or(trimmed);
            if !(code.contains("unsafe fn") || code.contains("unsafe {")) {
                continue;
            }
            let documented = line.contains("SAFETY")
                || lines[i.saturating_sub(12)..i].iter().rev().any(|prev| {
                    let p = prev.trim_start();
                    p.contains("SAFETY") || p.contains("# Safety")
                });
            if !documented {
                findings.push(Finding {
                    rule: Rule::Hygiene,
                    file: path.to_string(),
                    line: i as u32 + 1,
                    col: 1,
                    message: "`unsafe` without a nearby SAFETY comment: state the contract \
                              that makes this sound (within 12 lines above the site)"
                        .to_string(),
                    snippet: (*line).to_string(),
                });
            }
        }
    }
    for required in config.required.iter().filter(|r| r.file == path) {
        if !content.contains(&required.contains) {
            findings.push(Finding {
                rule: Rule::Hygiene,
                file: path.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "guard rail missing: {} must contain `{}` ({})",
                    path, required.contains, required.why
                ),
                snippet: String::new(),
            });
        }
    }
    findings
}

/// Findings for guard-rail files that were not scanned at all (deleted or
/// moved — silently losing the file must not silently lose the check).
pub fn missing_files(scanned: &[String], config: &RulesConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut expected: Vec<&str> = config
        .forbid_unsafe_files
        .iter()
        .map(String::as_str)
        .collect();
    expected.extend(config.required.iter().map(|r| r.file.as_str()));
    expected.sort_unstable();
    expected.dedup();
    for file in expected {
        if !scanned.iter().any(|s| s == file) {
            findings.push(Finding {
                rule: Rule::Hygiene,
                file: file.to_string(),
                line: 0,
                col: 0,
                message: "guard-rail file is named in ci/lint-rules.toml but was not found in \
                          the workspace"
                    .to_string(),
                snippet: String::new(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::analyze::{analyze, SourceFile};
    use crate::config::RulesConfig;

    fn config() -> RulesConfig {
        RulesConfig::from_toml(
            r##"
[hygiene]
ban_unbounded_channel = true
forbid_unsafe_files = ["crates/x/src/lib.rs"]

[[hygiene.required]]
file = "crates/x/src/lib.rs"
contains = "#![deny(clippy::disallowed_types)]"
why = "Rc ban"
"##,
        )
        .expect("test config parses")
    }

    fn channel_only_config() -> RulesConfig {
        RulesConfig::from_toml("[hygiene]\nban_unbounded_channel = true\n")
            .expect("test config parses")
    }

    #[test]
    fn unbounded_channel_is_flagged_and_sync_channel_is_not() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/a.rs".into(),
                content:
                    "fn f() { let (a, b) = mpsc::channel(); let (c, d) = mpsc::sync_channel(1); }"
                        .into(),
            }],
            &channel_only_config(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("unbounded"));
    }

    #[test]
    fn turbofish_does_not_dodge_the_channel_ban() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/a.rs".into(),
                content: "fn f() { let pair = mpsc::channel::<Vec<u8>>(); }".into(),
            }],
            &channel_only_config(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    }

    #[test]
    fn channel_in_test_code_is_exempt() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/a.rs".into(),
                content: "#[cfg(test)]\nmod tests { fn f() { let (a, b) = mpsc::channel(); } }"
                    .into(),
            }],
            &channel_only_config(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    fn unsafe_config() -> RulesConfig {
        RulesConfig::from_toml(
            r#"
[hygiene]
unsafe_allowed_dirs = ["crates/simd/src"]
"#,
        )
        .expect("test config parses")
    }

    #[test]
    fn unsafe_outside_allowed_dirs_is_flagged() {
        let report = analyze(
            &[SourceFile {
                path: "crates/tensor/src/fast.rs".into(),
                content: "fn f(p: *const f32) -> f32 { unsafe { *p } }".into(),
            }],
            &unsafe_config(),
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("confined"));
    }

    #[test]
    fn unsafe_attribute_idents_do_not_trip_confinement() {
        // `unsafe_code` / `unsafe_op_in_unsafe_fn` are distinct identifiers,
        // not the `unsafe` keyword.
        let report = analyze(
            &[SourceFile {
                path: "crates/tensor/src/lib.rs".into(),
                content: "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n".into(),
            }],
            &unsafe_config(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn unsafe_in_test_code_is_exempt_from_confinement() {
        let report = analyze(
            &[SourceFile {
                path: "crates/tensor/src/fast.rs".into(),
                content: "#[cfg(test)]\nmod tests { fn f(p: *const f32) -> f32 { unsafe { *p } } }"
                    .into(),
            }],
            &unsafe_config(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn unsafe_in_allowed_dir_requires_safety_comment() {
        let undocumented = analyze(
            &[SourceFile {
                path: "crates/simd/src/x86.rs".into(),
                content: "fn f(p: *const f32) -> f32 { unsafe { *p } }".into(),
            }],
            &unsafe_config(),
        );
        assert_eq!(
            undocumented.findings.len(),
            1,
            "{:?}",
            undocumented.findings
        );
        assert!(undocumented.findings[0].message.contains("SAFETY"));

        let documented = analyze(
            &[SourceFile {
                path: "crates/simd/src/x86.rs".into(),
                content: "fn f(p: *const f32) -> f32 {\n    // SAFETY: caller guarantees p is \
                          valid.\n    unsafe { *p }\n}"
                    .into(),
            }],
            &unsafe_config(),
        );
        assert!(documented.findings.is_empty(), "{:?}", documented.findings);
    }

    #[test]
    fn missing_forbid_and_guard_rail_are_flagged() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/lib.rs".into(),
                content: "// no attributes".into(),
            }],
            &config(),
        );
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    }

    #[test]
    fn present_guard_rails_pass() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/lib.rs".into(),
                content: "#![forbid(unsafe_code)]\n#![deny(clippy::disallowed_types)]\n".into(),
            }],
            &config(),
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn deleted_guard_rail_file_is_flagged() {
        let report = analyze(&[], &config());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("not found")),
            "{:?}",
            report.findings
        );
    }
}
