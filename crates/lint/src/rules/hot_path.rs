//! Hot-path allocation bans.
//!
//! The GEMM microkernel runs millions of times per second and the batcher
//! dispatch loop sits on every request; an accidental `clone()` or
//! `format!` there is a silent throughput regression long before a
//! benchmark notices. `ci/lint-rules.toml` names the (file, function)
//! spans and the banned constructors; everything else in those files is
//! unaffected.

use crate::analyze::FileContext;
use crate::config::RulesConfig;
use crate::lexer::TokenKind;
use crate::report::{Finding, Rule};

/// Runs the rule over one file's configured spans.
pub fn check(ctx: &FileContext<'_>, config: &RulesConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let spans: Vec<_> = config
        .hot_spans
        .iter()
        .filter(|s| s.file == ctx.path)
        .collect();
    if spans.is_empty() {
        return findings;
    }
    for function in &ctx.scoped.functions {
        if function.in_test || !spans.iter().any(|s| s.functions.contains(&function.name)) {
            continue;
        }
        let tokens = &ctx.scoped.tokens;
        for i in function.body.clone() {
            let tok = &tokens[i];
            let TokenKind::Ident(name) = &tok.kind else {
                continue;
            };
            let fun = &function.name;
            // `.clone(` / `.to_vec(` … method calls.
            if config.hot_methods.iter().any(|m| m == name)
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                findings.push(ctx.finding(
                    Rule::HotPathAlloc,
                    tok,
                    format!("`.{name}()` allocates inside hot-path function `{fun}`"),
                ));
                continue;
            }
            // `Vec::new` / `String::from` … constructor paths.
            if let (Some(c1), Some(c2), Some(TokenKind::Ident(next))) = (
                tokens.get(i + 1),
                tokens.get(i + 2),
                tokens.get(i + 3).map(|t| &t.kind),
            ) {
                if c1.is_punct(':') && c2.is_punct(':') {
                    let path = format!("{name}::{next}");
                    if config.hot_paths.contains(&path) {
                        findings.push(ctx.finding(
                            Rule::HotPathAlloc,
                            tok,
                            format!("`{path}` allocates inside hot-path function `{fun}`"),
                        ));
                        continue;
                    }
                }
            }
            // `format!` / `vec!` macros.
            if config.hot_macros.iter().any(|m| m == name)
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                findings.push(ctx.finding(
                    Rule::HotPathAlloc,
                    tok,
                    format!("`{name}!` allocates inside hot-path function `{fun}`"),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::analyze::{analyze, SourceFile};
    use crate::config::RulesConfig;

    fn config() -> RulesConfig {
        RulesConfig::from_toml(
            r#"
[hot_path]
banned_methods = ["clone", "to_vec", "to_string", "to_owned"]
banned_paths = ["Vec::new", "String::new", "String::from", "Box::new"]
banned_macros = ["format", "vec"]

[[hot_path.span]]
file = "crates/x/src/kernel.rs"
functions = ["microkernel", "dispatch_loop"]
"#,
        )
        .expect("test config parses")
    }

    fn run(content: &str) -> Vec<String> {
        analyze(
            &[SourceFile {
                path: "crates/x/src/kernel.rs".into(),
                content: content.into(),
            }],
            &config(),
        )
        .findings
        .into_iter()
        .map(|f| f.message)
        .collect()
    }

    #[test]
    fn allocations_in_span_functions_are_flagged() {
        let messages = run(
            "fn microkernel(x: &[f32]) -> Vec<f32> { let v = Vec::new(); let c = x.to_vec(); c }",
        );
        assert_eq!(messages.len(), 2, "{messages:?}");
    }

    #[test]
    fn macros_and_clones_are_flagged() {
        let messages =
            run("fn dispatch_loop(s: &str) { let m = format!(\"{s}\"); let c = s.to_string(); }");
        assert_eq!(messages.len(), 2, "{messages:?}");
    }

    #[test]
    fn functions_outside_the_span_are_free() {
        let messages = run("fn setup() -> Vec<f32> { let mut v = Vec::new(); v.push(1.0); v }");
        assert!(messages.is_empty(), "{messages:?}");
    }

    #[test]
    fn with_capacity_is_not_banned() {
        let messages =
            run("fn dispatch_loop(n: usize) { let v: Vec<u32> = Vec::with_capacity(n); }");
        assert!(messages.is_empty(), "{messages:?}");
    }

    #[test]
    fn other_files_are_free() {
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/other.rs".into(),
                content: "fn microkernel() { let v: Vec<u32> = Vec::new(); }".into(),
            }],
            &config(),
        );
        assert!(report.findings.is_empty());
    }
}
