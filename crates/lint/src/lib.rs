//! `vital-lint` — workspace static analysis for the invariants that keep
//! multi-worker serving safe.
//!
//! The shared-registry refactor made the whole model stack `Send + Sync`
//! and put N dispatch workers on one set of weights. The invariants that
//! keep that safe — no panics on the request path, no locks taken in
//! inconsistent order, no allocator traffic in the GEMM microkernel, no
//! unbounded queues — were previously enforced by convention and review.
//! This crate enforces them mechanically, in the same hand-rolled,
//! dependency-free style as the workspace's proc-macro and HTTP parser: a
//! real Rust [`lexer`] (raw strings, nested block comments, char-literal
//! vs lifetime disambiguation), a [`scope`] pass that exempts
//! `#[cfg(test)]` / `mod tests` code, and five [`rules`] driven by the
//! committed `ci/lint-rules.toml`:
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `panic-freedom` | no `unwrap`/`expect`/panic macros/literal indexing in the serve request-path crates |
//! | `lock-order` | the may-hold-while-acquiring graph over every `Mutex`/`RwLock` site is acyclic, and `.write()` is never taken while another guard is live |
//! | `hot-path-alloc` | no `Vec::new`/`to_vec`/`clone`/`String`/`format!` in the GEMM microkernel or the batcher dispatch loop |
//! | `hygiene` | no unbounded `mpsc::channel`; the `#![forbid(unsafe_code)]`, `#![deny(clippy::disallowed_types)]` and Send+Sync guard rails stay present |
//! | `closure-map` | no opaque-closure `.map(…)`/`.map_inplace(…)` in the compiled-inference spans — stages must stay expressed as named ops the graph compiler can fuse |
//!
//! Per-rule allowlists (each entry with a mandatory reason) live in the
//! same file; the tool reports allowlisted findings and stale entries
//! without failing on them. The `vital-lint` binary prints human
//! diagnostics plus a machine-readable JSON report and exits non-zero on
//! any finding; `tests/workspace_clean.rs` runs the same analysis inside
//! `cargo test`, which makes a clean tree a tier-1 invariant.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyze;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

pub use analyze::{analyze, discover_files, SourceFile};
pub use config::RulesConfig;
pub use report::{Finding, Report};

use std::path::Path;

/// Loads the rules file and analyzes the workspace rooted at `root`.
///
/// # Errors
/// Unreadable or malformed rules file, or I/O failure walking the tree.
pub fn run_workspace(root: &Path, rules_path: &Path) -> Result<Report, String> {
    let text = std::fs::read_to_string(rules_path)
        .map_err(|e| format!("cannot read {}: {e}", rules_path.display()))?;
    let config = RulesConfig::from_toml(&text)?;
    let files = discover_files(root, &config)
        .map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    Ok(analyze(&files, &config))
}
