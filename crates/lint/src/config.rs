//! Rule configuration: a hand-rolled TOML-subset parser plus the typed
//! [`RulesConfig`] the analyzer consumes.
//!
//! The workspace vendors its third-party crates, so — like `jsonio` and
//! the serve HTTP parser — the TOML reader here is dependency-free and
//! deliberately small. It supports exactly what `ci/lint-rules.toml`
//! needs: `[table]` headers, `[[array-of-tables]]` headers, and
//! `key = value` pairs where a value is a basic string, an integer, a
//! boolean, or an array of basic strings. Anything else is a hard error —
//! a rules file that cannot be read must fail the lint run loudly, never
//! silently relax it.

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic (double-quoted) string.
    Str(String),
    /// An integer.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// An array of basic strings.
    StrArray(Vec<String>),
}

/// One `[section]` or one element of a `[[section]]` array, with its
/// key/value pairs in file order.
#[derive(Debug, Clone, Default)]
pub struct TomlTable {
    /// Dotted header path, e.g. `hot_path.span`.
    pub path: String,
    /// Key → value pairs, in order.
    pub entries: Vec<(String, TomlValue)>,
}

impl TomlTable {
    /// Looks up a string key.
    pub fn str_key(&self, key: &str) -> Option<&str> {
        self.entries.iter().find_map(|(k, v)| match v {
            TomlValue::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// Looks up a string-array key.
    pub fn array_key(&self, key: &str) -> Option<&[String]> {
        self.entries.iter().find_map(|(k, v)| match v {
            TomlValue::StrArray(a) if k == key => Some(a.as_slice()),
            _ => None,
        })
    }

    /// Looks up a boolean key.
    pub fn bool_key(&self, key: &str) -> Option<bool> {
        self.entries.iter().find_map(|(k, v)| match v {
            TomlValue::Bool(b) if k == key => Some(*b),
            _ => None,
        })
    }
}

/// Parses the TOML subset into a flat list of tables. Keys that appear
/// before any header land in a table with an empty path. Arrays may span
/// multiple lines; continuation lines are joined until the bracket closes.
pub fn parse_toml(text: &str) -> Result<Vec<TomlTable>, String> {
    let mut tables: Vec<TomlTable> = vec![TomlTable::default()];
    let mut lines = text.lines().enumerate();
    while let Some((lineno, raw)) = lines.next() {
        let mut line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        while !array_closed(&line) {
            match lines.next() {
                Some((_, next)) => {
                    line.push(' ');
                    line.push_str(strip_comment(next).trim());
                }
                None => {
                    return Err(format!(
                        "lint-rules.toml:{}: unterminated array: {raw}",
                        lineno + 1
                    ))
                }
            }
        }
        let line = line.as_str();
        let err = |msg: &str| format!("lint-rules.toml:{}: {msg}: {raw}", lineno + 1);
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            tables.push(TomlTable {
                path: header.trim().to_string(),
                entries: Vec::new(),
            });
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            tables.push(TomlTable {
                path: header.trim().to_string(),
                entries: Vec::new(),
            });
        } else if let Some((key, value)) = line.split_once('=') {
            let value = parse_value(value.trim()).map_err(|m| err(&m))?;
            let table = tables.last_mut().ok_or_else(|| err("no open table"))?;
            table.entries.push((key.trim().to_string(), value));
        } else {
            return Err(err("expected `[table]`, `[[table]]` or `key = value`"));
        }
    }
    Ok(tables)
}

/// True when every `[` opened outside a string on this (logical) line has
/// been closed — i.e. the line does not continue a multi-line array.
fn array_closed(line: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth <= 0
}

/// Strips a `#` comment that is not inside a string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(text: &str) -> Result<TomlValue, String> {
    if text == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if text == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if text.starts_with('"') {
        return Ok(TomlValue::Str(parse_string(text)?.0));
    }
    if text.starts_with('[') {
        let inner = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or("unterminated array (arrays must be single-line)")?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let (item, remainder) = parse_string(rest)?;
            items.push(item);
            rest = remainder.trim();
            rest = rest.strip_prefix(',').unwrap_or(rest).trim();
        }
        return Ok(TomlValue::StrArray(items));
    }
    text.parse::<i64>()
        .map(TomlValue::Int)
        .map_err(|_| format!("unsupported value {text:?}"))
}

/// Parses one leading basic string, returning it and the remaining text.
fn parse_string(text: &str) -> Result<(String, &str), String> {
    let rest = text
        .strip_prefix('"')
        .ok_or_else(|| format!("expected a string, found {text:?}"))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                other => return Err(format!("unsupported escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

// ---------------------------------------------------------------------------
// Typed configuration
// ---------------------------------------------------------------------------

/// One allowlist entry: a finding in `file` whose source line contains
/// `contains` is downgraded from failure to a recorded exception. The
/// `reason` is mandatory — an allowlist without a justification is how
/// invariants rot.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path the entry applies to.
    pub file: String,
    /// Substring of the source line being excused.
    pub contains: String,
    /// Why this occurrence is acceptable.
    pub reason: String,
}

/// A named lock site: maps the final segment of an acquisition's receiver
/// path (`self.0.value.read()` → `value`) to a stable class name used as a
/// node in the lock-order graph.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Final receiver segment to match.
    pub suffix: String,
    /// Graph node name, e.g. `nn::Param::value`.
    pub class: String,
    /// Human description of the primitive (`RwLock`, `Mutex`,
    /// `Mutex+Condvar`).
    pub kind: String,
}

/// A hot-path span: the named functions of one file in which allocator
/// traffic is banned.
#[derive(Debug, Clone)]
pub struct HotSpan {
    /// Workspace-relative file path.
    pub file: String,
    /// Function names covered by the ban.
    pub functions: Vec<String>,
}

/// A guard-rail pattern that must stay present in a file.
#[derive(Debug, Clone)]
pub struct RequiredPattern {
    /// Workspace-relative file path.
    pub file: String,
    /// Exact substring that must occur in the file.
    pub contains: String,
    /// What the pattern protects.
    pub why: String,
}

/// The full rule set driving one lint run.
#[derive(Debug, Clone)]
pub struct RulesConfig {
    /// Directories (workspace-relative) to walk for `.rs` files.
    pub include: Vec<String>,
    /// Path prefixes to skip.
    pub exclude: Vec<String>,

    /// Crate roots (path prefixes) the panic-freedom rule covers.
    pub panic_crates: Vec<String>,
    /// Methods banned by panic-freedom (`unwrap`, `expect`).
    pub panic_methods: Vec<String>,
    /// Macros banned by panic-freedom (`panic`, `todo`, `unimplemented`).
    pub panic_macros: Vec<String>,
    /// Whether `expr[<int literal>]` indexing is banned in covered crates.
    pub panic_literal_index: bool,
    /// Panic-freedom allowlist.
    pub panic_allow: Vec<AllowEntry>,

    /// Named lock sites for the lock-order graph.
    pub lock_sites: Vec<LockSite>,
    /// Lock-order allowlist.
    pub lock_allow: Vec<AllowEntry>,

    /// Methods banned inside hot-path spans (`clone`, `to_vec`, …).
    pub hot_methods: Vec<String>,
    /// `Type::constructor` paths banned inside hot-path spans.
    pub hot_paths: Vec<String>,
    /// Macros banned inside hot-path spans (`format`, `vec`).
    pub hot_macros: Vec<String>,
    /// The hot-path spans.
    pub hot_spans: Vec<HotSpan>,
    /// Hot-path allowlist.
    pub hot_allow: Vec<AllowEntry>,

    /// Methods banned as opaque-closure calls inside closure-map spans
    /// (`map`, `map_inplace`).
    pub closure_methods: Vec<String>,
    /// The closure-map spans (same shape as hot-path spans: named
    /// functions of one file).
    pub closure_spans: Vec<HotSpan>,
    /// Closure-map allowlist.
    pub closure_allow: Vec<AllowEntry>,

    /// Whether unbounded `mpsc::channel` is banned workspace-wide.
    pub ban_unbounded_channel: bool,
    /// Files that must carry `#![forbid(unsafe_code)]`.
    pub forbid_unsafe_files: Vec<String>,
    /// Directory prefixes (workspace-relative) where `unsafe` is permitted.
    /// When non-empty, any `unsafe` token in a production file *outside*
    /// these prefixes is a finding — the whole workspace confines its
    /// `unsafe` to the audited SIMD backend.
    pub unsafe_allowed_dirs: Vec<String>,
    /// Guard-rail patterns that must stay present.
    pub required: Vec<RequiredPattern>,
    /// Hygiene allowlist.
    pub hygiene_allow: Vec<AllowEntry>,
}

impl RulesConfig {
    /// Builds the typed config from TOML text.
    ///
    /// # Errors
    /// Malformed TOML, unknown sections, or entries missing mandatory keys
    /// (most importantly: allowlist entries without a `reason`).
    pub fn from_toml(text: &str) -> Result<RulesConfig, String> {
        let tables = parse_toml(text)?;
        let mut config = RulesConfig {
            include: vec!["crates".into(), "src".into()],
            exclude: Vec::new(),
            panic_crates: Vec::new(),
            panic_methods: Vec::new(),
            panic_macros: Vec::new(),
            panic_literal_index: false,
            panic_allow: Vec::new(),
            lock_sites: Vec::new(),
            lock_allow: Vec::new(),
            hot_methods: Vec::new(),
            hot_paths: Vec::new(),
            hot_macros: Vec::new(),
            hot_spans: Vec::new(),
            hot_allow: Vec::new(),
            closure_methods: Vec::new(),
            closure_spans: Vec::new(),
            closure_allow: Vec::new(),
            ban_unbounded_channel: false,
            forbid_unsafe_files: Vec::new(),
            unsafe_allowed_dirs: Vec::new(),
            required: Vec::new(),
            hygiene_allow: Vec::new(),
        };
        let allow_entry = |t: &TomlTable| -> Result<AllowEntry, String> {
            Ok(AllowEntry {
                file: t
                    .str_key("file")
                    .ok_or_else(|| format!("[[{}]] needs `file`", t.path))?
                    .to_string(),
                contains: t
                    .str_key("contains")
                    .ok_or_else(|| format!("[[{}]] needs `contains`", t.path))?
                    .to_string(),
                reason: t
                    .str_key("reason")
                    .filter(|r| !r.trim().is_empty())
                    .ok_or_else(|| format!("[[{}]] needs a non-empty `reason`", t.path))?
                    .to_string(),
            })
        };
        for table in &tables {
            match table.path.as_str() {
                "" => {}
                "workspace" => {
                    if let Some(include) = table.array_key("include") {
                        config.include = include.to_vec();
                    }
                    if let Some(exclude) = table.array_key("exclude") {
                        config.exclude = exclude.to_vec();
                    }
                }
                "panic_freedom" => {
                    config.panic_crates = table.array_key("crates").unwrap_or(&[]).to_vec();
                    config.panic_methods =
                        table.array_key("banned_methods").unwrap_or(&[]).to_vec();
                    config.panic_macros = table.array_key("banned_macros").unwrap_or(&[]).to_vec();
                    config.panic_literal_index =
                        table.bool_key("ban_literal_index").unwrap_or(false);
                }
                "panic_freedom.allow" => config.panic_allow.push(allow_entry(table)?),
                "lock_order" => {}
                "lock_order.site" => config.lock_sites.push(LockSite {
                    suffix: table
                        .str_key("suffix")
                        .ok_or("[[lock_order.site]] needs `suffix`")?
                        .to_string(),
                    class: table
                        .str_key("class")
                        .ok_or("[[lock_order.site]] needs `class`")?
                        .to_string(),
                    kind: table.str_key("kind").unwrap_or("Mutex").to_string(),
                }),
                "lock_order.allow" => config.lock_allow.push(allow_entry(table)?),
                "hot_path" => {
                    config.hot_methods = table.array_key("banned_methods").unwrap_or(&[]).to_vec();
                    config.hot_paths = table.array_key("banned_paths").unwrap_or(&[]).to_vec();
                    config.hot_macros = table.array_key("banned_macros").unwrap_or(&[]).to_vec();
                }
                "hot_path.span" => config.hot_spans.push(HotSpan {
                    file: table
                        .str_key("file")
                        .ok_or("[[hot_path.span]] needs `file`")?
                        .to_string(),
                    functions: table.array_key("functions").unwrap_or(&[]).to_vec(),
                }),
                "hot_path.allow" => config.hot_allow.push(allow_entry(table)?),
                "closure_map" => {
                    config.closure_methods =
                        table.array_key("banned_methods").unwrap_or(&[]).to_vec();
                }
                "closure_map.span" => config.closure_spans.push(HotSpan {
                    file: table
                        .str_key("file")
                        .ok_or("[[closure_map.span]] needs `file`")?
                        .to_string(),
                    functions: table.array_key("functions").unwrap_or(&[]).to_vec(),
                }),
                "closure_map.allow" => config.closure_allow.push(allow_entry(table)?),
                "hygiene" => {
                    config.ban_unbounded_channel =
                        table.bool_key("ban_unbounded_channel").unwrap_or(false);
                    config.forbid_unsafe_files = table
                        .array_key("forbid_unsafe_files")
                        .unwrap_or(&[])
                        .to_vec();
                    config.unsafe_allowed_dirs = table
                        .array_key("unsafe_allowed_dirs")
                        .unwrap_or(&[])
                        .to_vec();
                }
                "hygiene.required" => config.required.push(RequiredPattern {
                    file: table
                        .str_key("file")
                        .ok_or("[[hygiene.required]] needs `file`")?
                        .to_string(),
                    contains: table
                        .str_key("contains")
                        .ok_or("[[hygiene.required]] needs `contains`")?
                        .to_string(),
                    why: table.str_key("why").unwrap_or("").to_string(),
                }),
                "hygiene.allow" => config.hygiene_allow.push(allow_entry(table)?),
                other => return Err(format!("unknown lint-rules.toml section [{other}]")),
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let text = r#"
# comment
[workspace]
include = ["crates", "src"] # trailing comment
exclude = ["vendor"]

[panic_freedom]
crates = ["crates/serve"]
banned_methods = ["unwrap", "expect"]
ban_literal_index = true

[[panic_freedom.allow]]
file = "crates/serve/src/metrics.rs"
contains = "expect(\"poisoned\")"
reason = "abort on poison"
"#;
        let config = RulesConfig::from_toml(text).expect("parses");
        assert_eq!(config.include, vec!["crates", "src"]);
        assert_eq!(config.panic_crates, vec!["crates/serve"]);
        assert!(config.panic_literal_index);
        assert_eq!(config.panic_allow.len(), 1);
        assert_eq!(config.panic_allow[0].contains, "expect(\"poisoned\")");
    }

    #[test]
    fn multi_line_arrays_parse() {
        let text = "[workspace]\ninclude = [\n    \"crates\", # comment\n    \"src\",\n]";
        let config = RulesConfig::from_toml(text).expect("parses");
        assert_eq!(config.include, vec!["crates", "src"]);
    }

    #[test]
    fn unterminated_multi_line_array_is_rejected() {
        assert!(RulesConfig::from_toml("[workspace]\ninclude = [\n\"crates\",").is_err());
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let text = "[[panic_freedom.allow]]\nfile = \"a.rs\"\ncontains = \"x\"\nreason = \"\"";
        assert!(RulesConfig::from_toml(text).is_err());
    }

    #[test]
    fn unknown_section_is_rejected() {
        assert!(RulesConfig::from_toml("[surprise]\nx = true").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let text = "[workspace]\ninclude = [\"a#b\"]";
        let config = RulesConfig::from_toml(text).expect("parses");
        assert_eq!(config.include, vec!["a#b"]);
    }

    #[test]
    fn lock_sites_parse() {
        let text = "[[lock_order.site]]\nsuffix = \"value\"\nclass = \"nn::Param::value\"\nkind = \"RwLock\"";
        let config = RulesConfig::from_toml(text).expect("parses");
        assert_eq!(config.lock_sites.len(), 1);
        assert_eq!(config.lock_sites[0].class, "nn::Param::value");
    }
}
