//! The `vital-lint` command-line tool.
//!
//! ```text
//! vital-lint --workspace [--root DIR] [--rules PATH] [--json PATH] [--quiet]
//! ```
//!
//! Analyzes every workspace crate against `ci/lint-rules.toml`, prints
//! human diagnostics, optionally writes the JSON report, and exits with
//! status 1 when any non-allowlisted finding exists (2 on usage or
//! configuration errors). CI runs this as the `static-analysis` job;
//! locally: `cargo run -p lint -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut rules: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--quiet" => quiet = true,
            "--root" => root = iter.next().map(PathBuf::from),
            "--rules" => rules = iter.next().map(PathBuf::from),
            "--json" => json = iter.next().map(PathBuf::from),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("vital-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("vital-lint: pass --workspace to analyze the workspace\n{USAGE}");
        return ExitCode::from(2);
    }
    let root = root
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let rules = rules.unwrap_or_else(|| root.join("ci/lint-rules.toml"));

    let report = match lint::run_workspace(&root, &rules) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("vital-lint: {message}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("vital-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.human());
        for stale in &report.stale_allows {
            println!("vital-lint: warning: stale allowlist entry: {stale}");
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

const USAGE: &str = "\
Usage: vital-lint --workspace [options]

Options:
  --workspace      analyze every workspace crate (required)
  --root DIR       workspace root (default: current directory)
  --rules PATH     rules file (default: <root>/ci/lint-rules.toml)
  --json PATH      also write the machine-readable JSON report
  --quiet          suppress human diagnostics (exit code only)
  -h, --help       this help
";
