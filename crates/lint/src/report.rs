//! Findings, the lock-order graph, and report rendering.
//!
//! The tool emits two views of one run: human diagnostics
//! (`file:line:col: rule: message`, one per line, stable order) and a
//! machine-readable JSON document for CI artifacts. The JSON writer is
//! local and minimal — the lint crate is dependency-free by design, so it
//! can never be taken down by a bug in a crate it is itself auditing.

use std::fmt::Write as _;

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panic-freedom on the serve request path.
    PanicFreedom,
    /// Lock-order / deadlock detection.
    LockOrder,
    /// Hot-path allocation bans.
    HotPathAlloc,
    /// Concurrency hygiene (channel bans, guard-rail presence).
    Hygiene,
    /// Opaque-closure `map` bans in compiled-inference spans.
    ClosureMap,
}

impl Rule {
    /// Stable rule identifier used in diagnostics and JSON.
    pub fn id(self) -> &'static str {
        match self {
            Rule::PanicFreedom => "panic-freedom",
            Rule::LockOrder => "lock-order",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::Hygiene => "hygiene",
            Rule::ClosureMap => "closure-map",
        }
    }
}

/// One rule violation at one source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The source line, trimmed, for the report reader.
    pub snippet: String,
}

/// An allowlisted finding: recorded, never fatal.
#[derive(Debug, Clone)]
pub struct Allowed {
    /// The underlying finding.
    pub finding: Finding,
    /// The allowlist entry's justification.
    pub reason: String,
}

/// One observed lock acquisition, a node-site in the graph.
#[derive(Debug, Clone)]
pub struct LockAcquisition {
    /// Lock class (node name), e.g. `serve::JobQueue::state`.
    pub class: String,
    /// `lock`, `read` or `write`.
    pub method: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function name.
    pub function: String,
}

/// A may-hold-while-acquiring edge: a guard of `from` was live when `to`
/// was acquired.
#[derive(Debug, Clone, PartialEq)]
pub struct LockEdge {
    /// Held lock class.
    pub from: String,
    /// Acquired lock class.
    pub to: String,
    /// Where the acquisition happened.
    pub file: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Enclosing function name.
    pub function: String,
}

/// The workspace-wide lock-order graph.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every acquisition site observed (the graph's nodes, with spans).
    pub acquisitions: Vec<LockAcquisition>,
    /// Every hold-while-acquiring edge observed.
    pub edges: Vec<LockEdge>,
}

/// The result of one lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Fatal findings (non-empty ⇒ exit non-zero).
    pub findings: Vec<Finding>,
    /// Allowlisted findings, kept visible in the report.
    pub allowed: Vec<Allowed>,
    /// Allowlist entries that matched nothing this run (candidates for
    /// removal — surfaced, but not fatal, so deleting dead exceptions
    /// never blocks an unrelated change).
    pub stale_allows: Vec<String>,
    /// The lock-order graph.
    pub lock_graph: LockGraph,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings for stable output (file, then line, then column).
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        self.allowed.sort_by(|a, b| {
            (&a.finding.file, a.finding.line).cmp(&(&b.finding.file, b.finding.line))
        });
    }

    /// Human diagnostics, one finding per line.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: {}: {}\n    {}",
                f.file,
                f.line,
                f.col,
                f.rule.id(),
                f.message,
                f.snippet
            );
        }
        let _ = writeln!(
            out,
            "vital-lint: {} file(s) scanned, {} finding(s), {} allowlisted, {} lock edge(s)",
            self.files_scanned,
            self.findings.len(),
            self.allowed.len(),
            self.lock_graph.edges.len()
        );
        out
    }

    /// The machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"snippet\": {}}}{comma}",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message),
                json_str(&f.snippet)
            );
        }
        out.push_str("  ],\n  \"allowlisted\": [\n");
        for (i, a) in self.allowed.iter().enumerate() {
            let comma = if i + 1 < self.allowed.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"snippet\": {}}}{comma}",
                json_str(a.finding.rule.id()),
                json_str(&a.finding.file),
                a.finding.line,
                json_str(&a.reason),
                json_str(&a.finding.snippet)
            );
        }
        out.push_str("  ],\n  \"stale_allowlist_entries\": [\n");
        for (i, s) in self.stale_allows.iter().enumerate() {
            let comma = if i + 1 < self.stale_allows.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    {}{comma}", json_str(s));
        }
        out.push_str("  ],\n  \"lock_graph\": {\n    \"acquisitions\": [\n");
        for (i, a) in self.lock_graph.acquisitions.iter().enumerate() {
            let comma = if i + 1 < self.lock_graph.acquisitions.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "      {{\"class\": {}, \"method\": {}, \"file\": {}, \"line\": {}, \"function\": {}}}{comma}",
                json_str(&a.class),
                json_str(&a.method),
                json_str(&a.file),
                a.line,
                json_str(&a.function)
            );
        }
        out.push_str("    ],\n    \"edges\": [\n");
        for (i, e) in self.lock_graph.edges.iter().enumerate() {
            let comma = if i + 1 < self.lock_graph.edges.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "      {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}, \"function\": {}}}{comma}",
                json_str(&e.from),
                json_str(&e.to),
                json_str(&e.file),
                e.line,
                json_str(&e.function)
            );
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: Rule::PanicFreedom,
            file: "crates/serve/src/x.rs".into(),
            line: 3,
            col: 7,
            message: "`.unwrap()` in request path".into(),
            snippet: "x.unwrap()".into(),
        }
    }

    #[test]
    fn human_output_has_file_line_col() {
        let report = Report {
            findings: vec![finding()],
            files_scanned: 1,
            ..Report::default()
        };
        let text = report.human();
        assert!(text.contains("crates/serve/src/x.rs:3:7: panic-freedom"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let mut report = Report {
            findings: vec![finding()],
            ..Report::default()
        };
        report.findings[0].message = "quote \" and\nnewline".into();
        let json = report.to_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"lock_graph\""));
        // The emitted report must itself be valid JSON for the CI
        // artifact consumers; `jsonio` (dev-dependency) is the workspace's
        // reference parser.
        jsonio::parse(&json).expect("report must be valid JSON");
    }

    #[test]
    fn sort_orders_by_position() {
        let mut a = finding();
        a.line = 9;
        let mut b = finding();
        b.line = 2;
        let mut report = Report {
            findings: vec![a, b],
            ..Report::default()
        };
        report.sort();
        assert_eq!(report.findings[0].line, 2);
    }
}
