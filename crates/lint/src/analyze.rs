//! Workspace walking and rule orchestration.

use std::fs;
use std::io;
use std::path::Path;

use crate::config::{AllowEntry, RulesConfig};
use crate::lexer::{lex, Token};
use crate::report::{Allowed, Finding, Report, Rule};
use crate::rules::{closure_map, hot_path, hygiene, lock_order, panic_freedom};
use crate::scope::{scope, ScopedTokens};

/// One source file to analyze, with its workspace-relative path
/// (forward-slash separated).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/serve/src/batcher.rs`.
    pub path: String,
    /// The file's text.
    pub content: String,
}

/// Per-file context handed to the rules.
pub struct FileContext<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Source lines (for snippets).
    pub lines: &'a [&'a str],
    /// Scoped token stream.
    pub scoped: &'a ScopedTokens,
}

impl FileContext<'_> {
    /// Builds a finding anchored at `tok`, attaching the source line.
    pub fn finding(&self, rule: Rule, tok: &Token, message: String) -> Finding {
        Finding {
            rule,
            file: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self
                .lines
                .get(tok.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }
}

/// Recursively collects the workspace's `.rs` files per the config's
/// include/exclude lists, sorted by path for deterministic reports.
///
/// # Errors
/// I/O failures reading the tree (beyond include roots that simply don't
/// exist, which are skipped).
pub fn discover_files(root: &Path, config: &RulesConfig) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for include in &config.include {
        let dir = root.join(include);
        if dir.is_dir() {
            walk(root, &dir, config, &mut files)?;
        } else if dir.is_file() {
            push_file(root, &dir, config, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(
    root: &Path,
    dir: &Path,
    config: &RulesConfig,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(root, &path, config, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            push_file(root, &path, config, files)?;
        }
    }
    Ok(())
}

fn push_file(
    root: &Path,
    path: &Path,
    config: &RulesConfig,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    if config
        .exclude
        .iter()
        .any(|e| rel == *e || rel.starts_with(&format!("{e}/")))
    {
        return Ok(());
    }
    files.push(SourceFile {
        path: rel,
        content: fs::read_to_string(path)?,
    });
    Ok(())
}

/// Runs every rule over `files` and assembles the report, applying the
/// config's allowlists.
pub fn analyze(files: &[SourceFile], config: &RulesConfig) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut raw_findings: Vec<Finding> = Vec::new();
    for file in files {
        // Files under a `tests/` directory are integration tests end to
        // end; in-file `#[cfg(test)]` scoping is handled by the scoper.
        let whole_file_is_test = file.path.starts_with("tests/") || file.path.contains("/tests/");
        let scoped = scope(lex(&file.content), whole_file_is_test);
        let lines: Vec<&str> = file.content.lines().collect();
        let ctx = FileContext {
            path: &file.path,
            lines: &lines,
            scoped: &scoped,
        };
        raw_findings.extend(panic_freedom::check(&ctx, config));
        raw_findings.extend(lock_order::check(&ctx, config, &mut report.lock_graph));
        raw_findings.extend(hot_path::check(&ctx, config));
        raw_findings.extend(closure_map::check(&ctx, config));
        raw_findings.extend(hygiene::check(&ctx, config));
        raw_findings.extend(hygiene::file_checks(&file.path, &file.content, config));
    }
    let scanned: Vec<String> = files.iter().map(|f| f.path.clone()).collect();
    raw_findings.extend(hygiene::missing_files(&scanned, config));
    raw_findings.extend(lock_order::cycle_findings(&report.lock_graph));

    // Allowlists: a finding whose source line (or message, for the global
    // graph findings) contains an entry's `contains` is recorded but not
    // fatal. Entries that match nothing are reported as stale.
    let mut used = vec![false; total_allows(config)];
    for finding in raw_findings {
        let allows = allows_for(config, finding.rule);
        let matched = allows.iter().find(|(_, entry)| {
            entry.file == finding.file
                && (finding.snippet.contains(&entry.contains)
                    || finding.message.contains(&entry.contains))
        });
        match matched {
            Some((index, entry)) => {
                used[*index] = true;
                report.allowed.push(Allowed {
                    finding,
                    reason: entry.reason.clone(),
                });
            }
            None => report.findings.push(finding),
        }
    }
    for (index, entry) in all_allows(config).into_iter().enumerate() {
        if !used[index] {
            report
                .stale_allows
                .push(format!("{}: {}", entry.file, entry.contains));
        }
    }
    report.sort();
    report
}

fn all_allows(config: &RulesConfig) -> Vec<&AllowEntry> {
    config
        .panic_allow
        .iter()
        .chain(&config.lock_allow)
        .chain(&config.hot_allow)
        .chain(&config.hygiene_allow)
        .chain(&config.closure_allow)
        .collect()
}

fn total_allows(config: &RulesConfig) -> usize {
    all_allows(config).len()
}

/// The allowlist slice for `rule`, as (global index, entry) pairs so
/// stale-entry tracking can span all four lists.
fn allows_for(config: &RulesConfig, rule: Rule) -> Vec<(usize, &AllowEntry)> {
    let all = all_allows(config);
    let (start, len) = match rule {
        Rule::PanicFreedom => (0, config.panic_allow.len()),
        Rule::LockOrder => (config.panic_allow.len(), config.lock_allow.len()),
        Rule::HotPathAlloc => (
            config.panic_allow.len() + config.lock_allow.len(),
            config.hot_allow.len(),
        ),
        Rule::Hygiene => (
            config.panic_allow.len() + config.lock_allow.len() + config.hot_allow.len(),
            config.hygiene_allow.len(),
        ),
        Rule::ClosureMap => (
            config.panic_allow.len()
                + config.lock_allow.len()
                + config.hot_allow.len()
                + config.hygiene_allow.len(),
            config.closure_allow.len(),
        ),
    };
    (start..start + len).map(|i| (i, all[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlisted_findings_are_recorded_not_fatal() {
        let config = RulesConfig::from_toml(
            r#"
[panic_freedom]
crates = ["crates/x"]
banned_methods = ["unwrap"]

[[panic_freedom.allow]]
file = "crates/x/src/a.rs"
contains = "startup_config.unwrap()"
reason = "startup-only; a bad config should abort the process"
"#,
        )
        .expect("config parses");
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/a.rs".into(),
                content: "fn main() { let c = startup_config.unwrap(); serve(c.unwrap()); }".into(),
            }],
            &config,
        );
        // The first unwrap is allowlisted (line text contains the entry),
        // but the entry excuses the *line*, so the second unwrap on the
        // same line is also allowed — both are recorded.
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.allowed.len(), 2);
        assert!(report.stale_allows.is_empty());
    }

    #[test]
    fn stale_allowlist_entries_are_surfaced() {
        let config = RulesConfig::from_toml(
            r#"
[panic_freedom]
crates = ["crates/x"]
banned_methods = ["unwrap"]

[[panic_freedom.allow]]
file = "crates/x/src/a.rs"
contains = "no longer here"
reason = "obsolete"
"#,
        )
        .expect("config parses");
        let report = analyze(
            &[SourceFile {
                path: "crates/x/src/a.rs".into(),
                content: "fn clean() {}".into(),
            }],
            &config,
        );
        assert!(report.findings.is_empty());
        assert_eq!(report.stale_allows.len(), 1);
    }

    #[test]
    fn discover_respects_excludes() {
        // Exercise against this crate's own tree: `src` exists, and
        // excluding it empties the walk.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let mut config = RulesConfig::from_toml("").expect("empty config");
        config.include = vec!["src".into()];
        config.exclude = vec![];
        let all = discover_files(root, &config).expect("walk");
        assert!(all.iter().any(|f| f.path == "src/lexer.rs"));
        config.exclude = vec!["src".into()];
        let none = discover_files(root, &config).expect("walk");
        assert!(none.is_empty());
    }
}
