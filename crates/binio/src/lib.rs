//! The compact binary wire format backing VITAL model checkpoints.
//!
//! `binio` implements the vendored `serde` data model (`serde::ser::Serializer`
//! / `serde::de::Deserializer`) over a fixed little-endian layout:
//!
//! | value | encoding |
//! |---|---|
//! | `bool` | one byte, `0`/`1` (anything else is a typed error) |
//! | `u8`/`u16`/`u32`/`u64`/`i64` | fixed-width little-endian |
//! | `usize` | `u64` |
//! | `f32`/`f64` | IEEE-754 bit pattern as `u32`/`u64` — NaN payloads survive, round-trips are **bit-exact** |
//! | `str` | `u64` byte length + UTF-8 bytes |
//! | sequence | `u64` element count + elements |
//! | struct | one byte field count (cheap structural validation) + fields in declaration order |
//! | enum variant | `u32` variant index |
//!
//! The format is *non-self-describing*: readers must know the type they are
//! decoding, which is exactly the checkpoint use case. Every failure mode —
//! truncation, trailing garbage, invalid booleans/UTF-8, absurd length
//! claims — surfaces as a typed [`BinError`], never a panic.
//!
//! # Example
//! ```
//! let bytes = binio::to_bytes(&vec![1.0f32, f32::NAN]).unwrap();
//! let back: Vec<f32> = binio::from_bytes(&bytes).unwrap();
//! assert_eq!(back[0], 1.0);
//! assert!(back[1].is_nan());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::error::Error;
use std::fmt;

use serde::de::{Deserialize, Deserializer};
use serde::ser::{Serialize, Serializer};

/// Typed decoding/encoding failures of the binary format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The input ended before a value could be fully read.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// Decoding finished but input bytes were left over.
    TrailingBytes {
        /// Number of unread bytes.
        extra: usize,
    },
    /// A boolean byte was neither `0` nor `1`.
    InvalidBool(u8),
    /// A string's bytes were not valid UTF-8.
    InvalidUtf8,
    /// A struct header did not match the expected type.
    StructMismatch {
        /// Struct the decoder expected.
        name: &'static str,
        /// Field count the decoder expected.
        expected: usize,
        /// Field count found on the wire.
        found: usize,
    },
    /// A length claim exceeded what the remaining input could possibly
    /// back.
    LengthOverflow {
        /// The claimed length.
        claimed: u64,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// Data-level validation failed (unknown enum variant, inconsistent
    /// shape, …).
    InvalidData(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            BinError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last decoded value")
            }
            BinError::InvalidBool(b) => write!(f, "invalid boolean byte {b:#04x}"),
            BinError::InvalidUtf8 => write!(f, "string bytes are not valid UTF-8"),
            BinError::StructMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "struct {name} expects {expected} fields, wire says {found}"
            ),
            BinError::LengthOverflow { claimed, remaining } => write!(
                f,
                "length claim {claimed} exceeds the {remaining} input bytes remaining"
            ),
            BinError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl Error for BinError {}

/// Serializer writing the binary layout into an owned buffer.
#[derive(Debug, Default)]
pub struct BinSerializer {
    buf: Vec<u8>,
}

impl BinSerializer {
    /// Creates an empty serializer.
    pub fn new() -> Self {
        BinSerializer::default()
    }

    /// Consumes the serializer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Serializer for BinSerializer {
    type Error = BinError;

    fn serialize_bool(&mut self, v: bool) -> Result<(), BinError> {
        self.buf.push(u8::from(v));
        Ok(())
    }

    fn serialize_u8(&mut self, v: u8) -> Result<(), BinError> {
        self.buf.push(v);
        Ok(())
    }

    fn serialize_u16(&mut self, v: u16) -> Result<(), BinError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u32(&mut self, v: u32) -> Result<(), BinError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u64(&mut self, v: u64) -> Result<(), BinError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i64(&mut self, v: i64) -> Result<(), BinError> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(&mut self, v: f32) -> Result<(), BinError> {
        self.serialize_u32(v.to_bits())
    }

    fn serialize_f64(&mut self, v: f64) -> Result<(), BinError> {
        self.serialize_u64(v.to_bits())
    }

    fn serialize_str(&mut self, v: &str) -> Result<(), BinError> {
        self.serialize_u64(v.len() as u64)?;
        self.buf.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_seq(&mut self, len: usize) -> Result<(), BinError> {
        self.serialize_u64(len as u64)
    }

    fn serialize_struct(&mut self, _name: &'static str, fields: usize) -> Result<(), BinError> {
        debug_assert!(fields <= u8::MAX as usize, "structs cap at 255 fields");
        self.buf.push(fields as u8);
        Ok(())
    }

    fn serialize_variant(&mut self, _name: &'static str, index: u32) -> Result<(), BinError> {
        self.serialize_u32(index)
    }
}

/// Deserializer reading the binary layout from a byte slice.
#[derive(Debug)]
pub struct BinDeserializer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> BinDeserializer<'a> {
    /// Creates a deserializer over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        BinDeserializer { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], BinError> {
        let slice = self.take(N)?;
        // `take(N)` returned exactly N bytes, so the conversion cannot
        // fail — but the checkpoint loader must never panic on corrupt
        // input, so the impossible case maps to an error all the same.
        slice.try_into().map_err(|_| BinError::UnexpectedEof {
            needed: N,
            remaining: slice.len(),
        })
    }
}

impl Deserializer for BinDeserializer<'_> {
    type Error = BinError;

    fn deserialize_bool(&mut self) -> Result<bool, BinError> {
        let [byte] = self.take_array::<1>()?;
        match byte {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(BinError::InvalidBool(other)),
        }
    }

    fn deserialize_u8(&mut self) -> Result<u8, BinError> {
        let [byte] = self.take_array::<1>()?;
        Ok(byte)
    }

    fn deserialize_u16(&mut self) -> Result<u16, BinError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    fn deserialize_u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    fn deserialize_u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    fn deserialize_i64(&mut self) -> Result<i64, BinError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    fn deserialize_f32(&mut self) -> Result<f32, BinError> {
        Ok(f32::from_bits(self.deserialize_u32()?))
    }

    fn deserialize_f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.deserialize_u64()?))
    }

    fn deserialize_str(&mut self) -> Result<String, BinError> {
        let len = self.deserialize_u64()?;
        if len > self.remaining() as u64 {
            return Err(BinError::LengthOverflow {
                claimed: len,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinError::InvalidUtf8)
    }

    fn deserialize_seq(&mut self) -> Result<usize, BinError> {
        let len = self.deserialize_u64()?;
        // Every element occupies at least one byte on the wire, so a claim
        // beyond the remaining input is corrupt by construction.
        if len > self.remaining() as u64 {
            return Err(BinError::LengthOverflow {
                claimed: len,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }

    fn deserialize_struct(&mut self, name: &'static str, fields: usize) -> Result<(), BinError> {
        let [count] = self.take_array::<1>()?;
        let found = count as usize;
        if found != fields {
            return Err(BinError::StructMismatch {
                name,
                expected: fields,
                found,
            });
        }
        Ok(())
    }

    fn deserialize_variant(&mut self, _name: &'static str) -> Result<u32, BinError> {
        self.deserialize_u32()
    }

    fn invalid_data(&self, msg: &str) -> BinError {
        BinError::InvalidData(msg.to_string())
    }

    fn seq_capacity_hint(&self, claimed_len: usize) -> usize {
        claimed_len.min(self.remaining())
    }
}

/// Serializes `value` into the binary layout.
///
/// # Errors
/// Returns a [`BinError`] if the value reports one (in-memory encoding
/// itself cannot fail).
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, BinError> {
    let mut serializer = BinSerializer::new();
    value.serialize(&mut serializer)?;
    Ok(serializer.into_bytes())
}

/// Deserializes a `T` from `bytes`, requiring the whole input to be
/// consumed.
///
/// # Errors
/// Returns a [`BinError`] on truncated, corrupt or trailing input.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, BinError> {
    let mut deserializer = BinDeserializer::new(bytes);
    let value = T::deserialize(&mut deserializer)?;
    if deserializer.remaining() != 0 {
        return Err(BinError::TrailingBytes {
            extra: deserializer.remaining(),
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(true);
        round_trip(false);
        round_trip(0xABu8);
        round_trip(0xBEEFu16);
        round_trip(0xDEADBEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(123usize);
        round_trip(1.5f32);
        round_trip(-0.0f64);
        round_trip(String::from("héllo"));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip((String::from("k"), 9u64));
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f32::from_bits(0x7FC0_1234); // NaN with payload
        let bytes = to_bytes(&weird).unwrap();
        let back: f32 = from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
        let inf_bytes = to_bytes(&f64::NEG_INFINITY).unwrap();
        let inf: f64 = from_bytes(&inf_bytes).unwrap();
        assert_eq!(inf, f64::NEG_INFINITY);
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let bytes = to_bytes(&vec![1.0f32, 2.0, 3.0]).unwrap();
        for cut in 0..bytes.len() {
            let result: Result<Vec<f32>, _> = from_bytes(&bytes[..cut]);
            assert!(
                matches!(
                    result,
                    Err(BinError::UnexpectedEof { .. }) | Err(BinError::LengthOverflow { .. })
                ),
                "cut at {cut} gave {result:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        let result: Result<u32, _> = from_bytes(&bytes);
        assert_eq!(result, Err(BinError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn invalid_bool_and_utf8_are_typed() {
        let result: Result<bool, _> = from_bytes(&[7]);
        assert_eq!(result, Err(BinError::InvalidBool(7)));

        let mut bad_str = to_bytes(&2u64).unwrap(); // claims 2 bytes
        bad_str.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        let result: Result<String, _> = from_bytes(&bad_str);
        assert_eq!(result, Err(BinError::InvalidUtf8));
    }

    #[test]
    fn absurd_length_claims_do_not_allocate() {
        // A sequence header claiming u64::MAX elements with no backing
        // bytes must fail fast instead of trying to reserve memory.
        let bytes = to_bytes(&u64::MAX).unwrap();
        let result: Result<Vec<u8>, _> = from_bytes(&bytes);
        assert!(matches!(result, Err(BinError::LengthOverflow { .. })));
    }

    #[test]
    fn errors_display_useful_messages() {
        assert!(BinError::UnexpectedEof {
            needed: 4,
            remaining: 1
        }
        .to_string()
        .contains("needed 4"));
        assert!(BinError::TrailingBytes { extra: 3 }
            .to_string()
            .contains('3'));
        assert!(BinError::StructMismatch {
            name: "Tensor",
            expected: 2,
            found: 5
        }
        .to_string()
        .contains("Tensor"));
        assert!(BinError::InvalidData("boom".into())
            .to_string()
            .contains("boom"));
    }
}
