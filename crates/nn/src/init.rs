use tensor::rng::SeededRng;
use tensor::Tensor;

/// Weight-initialisation schemes for dense / projection layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// Xavier/Glorot uniform — the default for tanh / softmax / attention
    /// projections.
    #[default]
    Xavier,
    /// He (Kaiming) normal — preferred ahead of ReLU activations.
    He,
    /// Small-scale normal noise (σ = 0.02), as used for transformer
    /// positional embeddings.
    SmallNormal,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Samples a weight matrix of shape `[fan_in, fan_out]`.
    pub fn weight(self, rng: &mut SeededRng, fan_in: usize, fan_out: usize) -> Tensor {
        match self {
            Init::Xavier => rng.xavier_uniform(fan_in, fan_out),
            Init::He => rng.he_normal(fan_in, fan_out),
            Init::SmallNormal => rng.normal_tensor(&[fan_in, fan_out], 0.0, 0.02),
            Init::Zeros => Tensor::zeros(&[fan_in, fan_out]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_respected() {
        let mut rng = SeededRng::new(0);
        for init in [Init::Xavier, Init::He, Init::SmallNormal, Init::Zeros] {
            let w = init.weight(&mut rng, 5, 7);
            assert_eq!(w.shape().dims(), &[5, 7]);
        }
    }

    #[test]
    fn zeros_is_zero_and_default_is_xavier() {
        let mut rng = SeededRng::new(0);
        assert_eq!(Init::Zeros.weight(&mut rng, 3, 3).sum(), 0.0);
        assert_eq!(Init::default(), Init::Xavier);
    }

    #[test]
    fn small_normal_is_small() {
        let mut rng = SeededRng::new(1);
        let w = Init::SmallNormal.weight(&mut rng, 50, 50);
        assert!(w.std() < 0.05);
        assert!(w.abs().max().unwrap() < 0.2);
    }
}
