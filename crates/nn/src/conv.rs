use autograd::Var;
use tensor::rng::SeededRng;
use tensor::{Tensor, TensorError};

use crate::{Dense, Init, Layer, Param, Result, Session};

/// A 1-D convolution over the feature (AP) axis of a fingerprint batch.
///
/// The CNNLoc baseline (paper §VI.C, ref. \[21\]) applies stacked 1-D
/// convolutions to the RSSI fingerprint vector. The layer treats the input as
/// `[batch, length]` with a single input channel and produces
/// `[batch, windows × out_channels]` where `windows = (length − kernel)/stride + 1`.
///
/// Internally each sliding window is a column slice of the input that shares
/// one dense `kernel × out_channels` projection, so the convolution is
/// expressed entirely in terms of differentiable primitives.
#[derive(Debug, Clone)]
pub struct Conv1d {
    kernel: Dense,
    kernel_size: usize,
    stride: usize,
    out_channels: usize,
}

impl Conv1d {
    /// Creates a 1-D convolution layer.
    ///
    /// # Errors
    /// Returns an error if `kernel_size` or `stride` or `out_channels` is zero.
    pub fn new(
        rng: &mut SeededRng,
        kernel_size: usize,
        out_channels: usize,
        stride: usize,
    ) -> Result<Self> {
        if kernel_size == 0 || stride == 0 || out_channels == 0 {
            return Err(TensorError::Empty { op: "conv1d.new" });
        }
        Ok(Conv1d {
            kernel: Dense::new(rng, kernel_size, out_channels, Init::He),
            kernel_size,
            stride,
            out_channels,
        })
    }

    /// The number of sliding windows produced for an input of width `length`.
    ///
    /// # Errors
    /// Returns an error if `length < kernel_size`.
    pub fn windows_for(&self, length: usize) -> Result<usize> {
        if length < self.kernel_size {
            return Err(TensorError::ShapeMismatch {
                op: "conv1d.windows_for",
                lhs: vec![length],
                rhs: vec![self.kernel_size],
            });
        }
        Ok((length - self.kernel_size) / self.stride + 1)
    }

    /// Output width (`windows × out_channels`) for an input of width `length`.
    ///
    /// # Errors
    /// Returns an error if `length < kernel_size`.
    pub fn out_width_for(&self, length: usize) -> Result<usize> {
        Ok(self.windows_for(length)? * self.out_channels)
    }

    /// Applies the convolution to a `[batch, length]` variable.
    ///
    /// # Errors
    /// Returns an error if the input is narrower than the kernel.
    pub fn forward<'t>(&self, session: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        let (_, length) = x.value().shape().as_matrix()?;
        let windows = self.windows_for(length)?;
        let mut outputs = Vec::with_capacity(windows);
        for w in 0..windows {
            let start = w * self.stride;
            let window = x.slice_cols(start, start + self.kernel_size)?;
            outputs.push(self.kernel.forward(session, window)?);
        }
        Var::concat_cols(&outputs)
    }

    /// Appends the convolution to an expression graph: every sliding
    /// window is a column slice sharing one dense projection, exactly the
    /// decomposition [`Conv1d::forward`] records on a tape, so the compiled
    /// kernel is bit-identical to the eager pass.
    ///
    /// # Errors
    /// Returns a [`graph::GraphError`] if the input is narrower than the
    /// kernel or an operand shape mismatches.
    pub fn push_graph(
        &self,
        g: &mut graph::Graph,
        x: graph::ExprId,
    ) -> std::result::Result<graph::ExprId, graph::GraphError> {
        let (rows, length) = g.dims(x)?;
        if length < self.kernel_size {
            return Err(graph::GraphError::ShapeMismatch {
                op: "conv1d",
                lhs: (rows, length),
                rhs: (self.kernel_size, self.out_channels),
            });
        }
        let windows = (length - self.kernel_size) / self.stride + 1;
        let mut outputs = Vec::with_capacity(windows);
        for w in 0..windows {
            let start = w * self.stride;
            let window = g.slice_cols(x, start, start + self.kernel_size)?;
            outputs.push(self.kernel.push_graph(g, window)?);
        }
        g.concat_cols(&outputs)
    }

    /// Inference-only forward pass without a tape.
    ///
    /// # Errors
    /// Returns an error if the input is narrower than the kernel.
    pub fn forward_inference(&self, x: &Tensor) -> Result<Tensor> {
        let (_, length) = x.shape().as_matrix()?;
        let windows = self.windows_for(length)?;
        let mut outputs = Vec::with_capacity(windows);
        for w in 0..windows {
            let start = w * self.stride;
            let window = x.slice_cols(start, start + self.kernel_size)?;
            outputs.push(self.kernel.forward_inference(&window)?);
        }
        let refs: Vec<&Tensor> = outputs.iter().collect();
        Tensor::concat_cols(&refs)
    }
}

impl Layer for Conv1d {
    fn params(&self) -> Vec<Param> {
        self.kernel.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;

    #[test]
    fn rejects_zero_configuration() {
        let mut rng = SeededRng::new(0);
        assert!(Conv1d::new(&mut rng, 0, 4, 1).is_err());
        assert!(Conv1d::new(&mut rng, 3, 0, 1).is_err());
        assert!(Conv1d::new(&mut rng, 3, 4, 0).is_err());
    }

    #[test]
    fn window_arithmetic() {
        let mut rng = SeededRng::new(1);
        let conv = Conv1d::new(&mut rng, 4, 2, 2).unwrap();
        assert_eq!(conv.windows_for(10).unwrap(), 4);
        assert_eq!(conv.out_width_for(10).unwrap(), 8);
        assert!(conv.windows_for(3).is_err());
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let mut rng = SeededRng::new(2);
        let conv = Conv1d::new(&mut rng, 5, 3, 1).unwrap();
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let x = session.constant(SeededRng::new(3).uniform_tensor(&[2, 20], -1.0, 1.0));
        let y = conv.forward(&session, x).unwrap().value();
        assert_eq!(y.shape().dims(), &[2, 16 * 3]);
        assert!(y.all_finite());
    }

    #[test]
    fn inference_matches_tape_forward() {
        let mut rng = SeededRng::new(4);
        let conv = Conv1d::new(&mut rng, 3, 2, 2).unwrap();
        let x = SeededRng::new(5).uniform_tensor(&[3, 11], -1.0, 1.0);
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let y_tape = conv
            .forward(&session, session.constant(x.clone()))
            .unwrap()
            .value();
        let y_inf = conv.forward_inference(&x).unwrap();
        assert_eq!(y_tape, y_inf);
    }

    #[test]
    fn gradients_flow_to_kernel() {
        let mut rng = SeededRng::new(6);
        let conv = Conv1d::new(&mut rng, 3, 2, 1).unwrap();
        let tape = Tape::new();
        let session = Session::new(&tape, true, 0);
        let x = session.constant(Tensor::ones(&[1, 8]));
        let loss = conv.forward(&session, x).unwrap().sum_all().unwrap();
        session.backward(loss).unwrap();
        for p in conv.params() {
            assert!(p.grad().is_some());
        }
    }
}
