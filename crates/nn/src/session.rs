// Justified exception to the workspace RefCell ban, for this module only:
// a session is bound to one tape on one thread for one pass (tapes are not
// Sync either), so single-threaded interior mutability is exactly right
// here. vital-lint pins the ban itself in ci/lint-rules.toml.
#![allow(clippy::disallowed_types)]

use std::cell::RefCell;

use autograd::{Tape, Var};
use tensor::rng::SeededRng;
use tensor::Tensor;

use crate::{Param, Result};

/// One forward/backward pass over a model.
///
/// A `Session` wraps an autograd [`Tape`] together with:
///
/// * the *training* flag (controls dropout),
/// * a seeded RNG for stochastic layers, and
/// * the list of [`Param`]s registered during the forward pass, so that
///   [`Session::backward`] can copy tape gradients back into the parameters
///   for the optimizer.
///
/// Build a fresh `Session` (and tape) for every batch.
///
/// `Session` (with the optimizers in [`crate::optim`]) is the
/// **training-session handle** of the thread-safe parameter design:
/// [`Session::param`] takes the lock-free `O(1)` weight snapshot every
/// reader uses, while [`Session::backward`] is the only place gradients
/// are deposited into a [`Param`]'s mutex-guarded training state.
/// Inference paths never construct anything but the tape + session pair on
/// their own thread, so serving takes no training locks.
pub struct Session<'t> {
    tape: &'t Tape,
    training: bool,
    rng: RefCell<SeededRng>,
    registered: RefCell<Vec<(Param, Var<'t>)>>,
}

impl<'t> Session<'t> {
    /// Creates a session over `tape`.
    ///
    /// `training` enables dropout; `seed` drives every stochastic layer in
    /// this pass (so a full epoch can be replayed deterministically).
    pub fn new(tape: &'t Tape, training: bool, seed: u64) -> Self {
        Session {
            tape,
            training,
            rng: RefCell::new(SeededRng::new(seed)),
            registered: RefCell::new(Vec::new()),
        }
    }

    /// The underlying tape.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Whether dropout and other train-only behaviour is active.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Registers a parameter on the tape and returns its variable handle.
    ///
    /// The parameter is remembered so its gradient is filled in by
    /// [`Session::backward`].
    pub fn param(&self, param: &Param) -> Var<'t> {
        let var = self.tape.var(param.value());
        self.registered.borrow_mut().push((param.clone(), var));
        var
    }

    /// Places a non-trainable tensor (input batch, target, mask) on the tape.
    pub fn constant(&self, value: Tensor) -> Var<'t> {
        self.tape.constant(value)
    }

    /// Inverted dropout: during training each element is zeroed with
    /// probability `rate` and survivors are rescaled by `1/(1-rate)`; during
    /// evaluation the input passes through unchanged.
    ///
    /// # Errors
    /// Propagates shape errors from the underlying mask multiplication.
    pub fn dropout(&self, x: Var<'t>, rate: f32) -> Result<Var<'t>> {
        if !self.training || rate <= 0.0 {
            return Ok(x);
        }
        let dims: Vec<usize> = x.value().shape().dims().to_vec();
        let mask = self.rng.borrow_mut().dropout_mask(&dims, rate);
        x.mul_mask(&mask)
    }

    /// Draws from the session RNG; exposed for layers that need extra
    /// stochasticity (e.g. data augmentation applied inside a model).
    pub fn rng(&self) -> std::cell::RefMut<'_, SeededRng> {
        self.rng.borrow_mut()
    }

    /// Runs the backward pass from `loss` and copies every registered
    /// parameter's gradient out of the tape (accumulating into the params).
    ///
    /// # Errors
    /// Propagates tape errors (e.g. `loss` not being a scalar).
    pub fn backward(&self, loss: Var<'t>) -> Result<()> {
        self.tape.backward(loss)?;
        for (param, var) in self.registered.borrow().iter() {
            if let Ok(grad) = self.tape.grad(*var) {
                param.accumulate_grad(&grad);
            }
        }
        Ok(())
    }

    /// Number of parameters registered so far in this pass.
    pub fn registered_len(&self) -> usize {
        self.registered.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;

    #[test]
    fn registers_params_and_collects_grads() {
        let p = Param::new("w", Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap());
        let tape = Tape::new();
        let session = Session::new(&tape, true, 0);
        let w = session.param(&p);
        let x = session.constant(Tensor::from_vec(vec![4.0, 5.0], &[2]).unwrap());
        let loss = w.mul(x).unwrap().sum_all().unwrap();
        session.backward(loss).unwrap();
        assert_eq!(session.registered_len(), 1);
        assert_eq!(p.grad().unwrap().as_slice(), &[4.0, 5.0]);
    }

    #[test]
    fn dropout_disabled_in_eval_mode() {
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let x = session.constant(Tensor::ones(&[4, 4]));
        let y = session.dropout(x, 0.9).unwrap();
        assert_eq!(y.value(), Tensor::ones(&[4, 4]));
        assert!(!session.is_training());
    }

    #[test]
    fn dropout_zeroes_and_rescales_in_training() {
        let tape = Tape::new();
        let session = Session::new(&tape, true, 7);
        let x = session.constant(Tensor::ones(&[100, 10]));
        let y = session.dropout(x, 0.5).unwrap().value();
        let zeros = y.as_slice().iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 300 && zeros < 700, "zeros = {zeros}");
        let kept = y.as_slice().iter().find(|v| **v != 0.0).unwrap();
        assert!((kept - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dropout_with_zero_rate_is_identity() {
        let tape = Tape::new();
        let session = Session::new(&tape, true, 7);
        let x = session.constant(Tensor::ones(&[2, 2]));
        let y = session.dropout(x, 0.0).unwrap();
        assert_eq!(y.value(), Tensor::ones(&[2, 2]));
    }

    #[test]
    fn same_seed_same_dropout_mask() {
        let run = |seed: u64| {
            let tape = Tape::new();
            let session = Session::new(&tape, true, seed);
            let x = session.constant(Tensor::ones(&[10, 10]));
            session.dropout(x, 0.3).unwrap().value()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
