use autograd::{Tape, Var};
use tensor::rng::SeededRng;
use tensor::Tensor;

use crate::optim::{Adam, Optimizer};
use crate::{Activation, Layer, Mlp, Param, Result, Session};

/// A stacked (denoising) autoencoder.
///
/// Both WiDeep (ref. \[22\]) and CNNLoc (ref. \[21\]) use stacked autoencoders to
/// denoise / pre-train representations of the RSSI fingerprint before a
/// downstream classifier. The encoder compresses the fingerprint through the
/// widths in `hidden`, the decoder mirrors the widths to reconstruct the
/// input, and pre-training minimises the reconstruction MSE — optionally with
/// input corruption noise (denoising autoencoder).
#[derive(Debug, Clone)]
pub struct StackedAutoencoder {
    encoder: Mlp,
    decoder: Mlp,
    input_dim: usize,
    code_dim: usize,
}

impl StackedAutoencoder {
    /// Creates an autoencoder with the given hidden widths, e.g.
    /// `new(rng, 120, &[64, 32])` builds encoder `120→64→32` and decoder
    /// `32→64→120`.
    ///
    /// # Panics
    /// Panics if `hidden` is empty (an autoencoder needs at least one code
    /// layer).
    pub fn new(rng: &mut SeededRng, input_dim: usize, hidden: &[usize]) -> Self {
        assert!(
            !hidden.is_empty(),
            "autoencoder needs at least one hidden (code) width"
        );
        let mut enc_sizes = vec![input_dim];
        enc_sizes.extend_from_slice(hidden);
        let mut dec_sizes: Vec<usize> = enc_sizes.clone();
        dec_sizes.reverse();
        StackedAutoencoder {
            encoder: Mlp::new(rng, &enc_sizes, Activation::Sigmoid),
            decoder: Mlp::new(rng, &dec_sizes, Activation::Sigmoid),
            input_dim,
            code_dim: *hidden.last().expect("checked non-empty"),
        }
    }

    /// Width of the input / reconstruction.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Width of the bottleneck code.
    pub fn code_dim(&self) -> usize {
        self.code_dim
    }

    /// Encodes a batch into the bottleneck representation.
    ///
    /// # Errors
    /// Returns an error if the input width differs from `input_dim`.
    pub fn encode<'t>(&self, session: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        self.encoder.forward(session, x)
    }

    /// Encodes without recording a tape (inference).
    ///
    /// # Errors
    /// Returns an error if the input width differs from `input_dim`.
    pub fn encode_inference(&self, x: &Tensor) -> Result<Tensor> {
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        Ok(self
            .encoder
            .forward(&session, session.constant(x.clone()))?
            .value())
    }

    /// Appends the encoder to an expression graph, exactly mirroring the
    /// eval-mode [`StackedAutoencoder::encode_inference`] (dense layers with
    /// the sigmoid between them, none after the bottleneck).
    ///
    /// # Errors
    /// Returns a [`graph::GraphError`] on operand-shape mismatch.
    pub fn encode_push_graph(
        &self,
        g: &mut graph::Graph,
        x: graph::ExprId,
    ) -> std::result::Result<graph::ExprId, graph::GraphError> {
        self.encoder.push_graph(g, x)
    }

    /// Full reconstruction (encode then decode).
    ///
    /// # Errors
    /// Returns an error if the input width differs from `input_dim`.
    pub fn reconstruct<'t>(&self, session: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        let code = self.encode(session, x)?;
        self.decoder.forward(session, code)
    }

    /// Pre-trains the autoencoder on `data` (a `[samples, input_dim]` matrix)
    /// by minimising reconstruction MSE with Adam, optionally corrupting the
    /// input with Gaussian noise of standard deviation `noise_std`
    /// (denoising-autoencoder style). Returns the final epoch's mean loss.
    ///
    /// # Errors
    /// Returns an error if `data` is not a matrix of width `input_dim`.
    pub fn pretrain(
        &self,
        data: &Tensor,
        epochs: usize,
        learning_rate: f32,
        noise_std: f32,
        seed: u64,
    ) -> Result<f32> {
        let mut adam = Adam::new(learning_rate);
        let mut rng = SeededRng::new(seed);
        let mut last = 0.0;
        for epoch in 0..epochs {
            let corrupted = if noise_std > 0.0 {
                let noise = rng.normal_tensor(data.shape().dims(), 0.0, noise_std);
                data.add(&noise)?
            } else {
                data.clone()
            };
            let tape = Tape::new();
            let session = Session::new(&tape, true, seed.wrapping_add(epoch as u64));
            let x = session.constant(corrupted);
            let recon = self.reconstruct(&session, x)?;
            let loss = recon.mse_loss(data)?;
            last = loss.value().item()?;
            session.backward(loss)?;
            adam.step(&self.params());
            for p in self.params() {
                p.zero_grad();
            }
        }
        Ok(last)
    }
}

impl Layer for StackedAutoencoder {
    fn params(&self) -> Vec<Param> {
        let mut params = self.encoder.params();
        params.extend(self.decoder.params());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_are_mirrored() {
        let mut rng = SeededRng::new(0);
        let ae = StackedAutoencoder::new(&mut rng, 30, &[16, 8]);
        assert_eq!(ae.input_dim(), 30);
        assert_eq!(ae.code_dim(), 8);
        let x = Tensor::ones(&[2, 30]);
        let code = ae.encode_inference(&x).unwrap();
        assert_eq!(code.shape().dims(), &[2, 8]);
    }

    #[test]
    #[should_panic(expected = "at least one hidden")]
    fn empty_hidden_panics() {
        let mut rng = SeededRng::new(0);
        let _ = StackedAutoencoder::new(&mut rng, 10, &[]);
    }

    #[test]
    fn reconstruction_shape_matches_input() {
        let mut rng = SeededRng::new(1);
        let ae = StackedAutoencoder::new(&mut rng, 12, &[6]);
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let x = session.constant(Tensor::ones(&[3, 12]));
        let recon = ae.reconstruct(&session, x).unwrap();
        assert_eq!(recon.value().shape().dims(), &[3, 12]);
    }

    #[test]
    fn pretraining_reduces_reconstruction_error() {
        let mut rng = SeededRng::new(2);
        let ae = StackedAutoencoder::new(&mut rng, 10, &[6]);
        let data = SeededRng::new(3).uniform_tensor(&[32, 10], 0.0, 1.0);

        // Loss before training.
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let before = ae
            .reconstruct(&session, session.constant(data.clone()))
            .unwrap()
            .mse_loss(&data)
            .unwrap()
            .value()
            .item()
            .unwrap();

        let after = ae.pretrain(&data, 120, 0.01, 0.0, 4).unwrap();
        assert!(
            after < before * 0.6,
            "autoencoder failed to learn: before {before}, after {after}"
        );
    }

    #[test]
    fn denoising_pretrain_runs_with_noise() {
        let mut rng = SeededRng::new(5);
        let ae = StackedAutoencoder::new(&mut rng, 8, &[4]);
        let data = SeededRng::new(6).uniform_tensor(&[16, 8], 0.0, 1.0);
        let loss = ae.pretrain(&data, 10, 0.01, 0.1, 7).unwrap();
        assert!(loss.is_finite());
    }
}
