use autograd::Var;
use tensor::rng::SeededRng;
use tensor::Tensor;

use crate::{Init, Layer, Param, Result, Session};

/// A fully-connected affine layer: `y = x W + b`.
///
/// Input is a `[batch, in_features]` matrix; output is
/// `[batch, out_features]`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Creates a dense layer with the given initialisation for the weight
    /// (the bias always starts at zero).
    pub fn new(rng: &mut SeededRng, in_features: usize, out_features: usize, init: Init) -> Self {
        Dense {
            weight: Param::new(
                format!("dense.w[{in_features}x{out_features}]"),
                init.weight(rng, in_features, out_features),
            ),
            bias: Param::new(
                format!("dense.b[{out_features}]"),
                Tensor::zeros(&[out_features]),
            ),
            in_features,
            out_features,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the affine map to a `[batch, in_features]` variable.
    ///
    /// # Errors
    /// Returns an error if the input's column count differs from
    /// `in_features`.
    pub fn forward<'t>(&self, session: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        let w = session.param(&self.weight);
        let b = session.param(&self.bias);
        x.matmul(w)?.add_row_broadcast(b)
    }

    /// Direct (inference-only) forward pass without recording on a tape.
    ///
    /// # Errors
    /// Returns an error if the input's column count differs from
    /// `in_features`.
    pub fn forward_inference(&self, x: &Tensor) -> Result<Tensor> {
        x.matmul(&self.weight.value())?
            .add_row_broadcast(&self.bias.value())
    }

    /// Appends this layer's affine map to an expression graph, snapshotting
    /// the current weights as constants. The bias add fuses into the GEMM's
    /// output pass at compile time, so the compiled plan is bit-identical
    /// to [`Dense::forward_inference`] while touching the output once.
    ///
    /// # Errors
    /// Returns a [`graph::GraphError`] on operand-shape mismatch.
    pub fn push_graph(
        &self,
        g: &mut graph::Graph,
        x: graph::ExprId,
    ) -> std::result::Result<graph::ExprId, graph::GraphError> {
        let w = g.constant(self.weight.value())?;
        let b = g.constant(self.bias.value())?;
        let mm = g.matmul(x, w, tensor::MatmulSpec::NN)?;
        g.add_row_broadcast(mm, b)
    }
}

impl Layer for Dense {
    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;

    #[test]
    fn forward_shape_and_param_count() {
        let mut rng = SeededRng::new(0);
        let layer = Dense::new(&mut rng, 4, 3, Init::Xavier);
        assert_eq!(layer.param_count(), 4 * 3 + 3);
        assert_eq!(layer.in_features(), 4);
        assert_eq!(layer.out_features(), 3);

        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let x = session.constant(Tensor::ones(&[2, 4]));
        let y = layer.forward(&session, x).unwrap();
        assert_eq!(y.value().shape().dims(), &[2, 3]);
    }

    #[test]
    fn forward_inference_matches_tape_forward() {
        let mut rng = SeededRng::new(1);
        let layer = Dense::new(&mut rng, 5, 2, Init::He);
        let x = SeededRng::new(2).uniform_tensor(&[3, 5], -1.0, 1.0);
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let y_tape = layer
            .forward(&session, session.constant(x.clone()))
            .unwrap()
            .value();
        let y_direct = layer.forward_inference(&x).unwrap();
        assert_eq!(y_tape, y_direct);
    }

    #[test]
    fn gradients_reach_weight_and_bias() {
        let mut rng = SeededRng::new(3);
        let layer = Dense::new(&mut rng, 2, 2, Init::Xavier);
        let tape = Tape::new();
        let session = Session::new(&tape, true, 0);
        let x = session.constant(Tensor::ones(&[4, 2]));
        let loss = layer
            .forward(&session, x)
            .unwrap()
            .softmax_cross_entropy(&[0, 1, 0, 1])
            .unwrap();
        session.backward(loss).unwrap();
        for p in layer.params() {
            assert!(p.grad().is_some(), "missing grad for {}", p.name());
        }
    }

    #[test]
    fn wrong_input_width_errors() {
        let mut rng = SeededRng::new(4);
        let layer = Dense::new(&mut rng, 3, 2, Init::Xavier);
        assert!(layer.forward_inference(&Tensor::ones(&[1, 5])).is_err());
    }
}
