//! Neural-network building blocks for the VITAL reproduction.
//!
//! Built on top of the [`tensor`] and [`autograd`] crates, this crate
//! provides the layers, optimizers and training session plumbing shared by
//! the VITAL vision transformer ([`vital`]) and the comparison baselines
//! ([`baselines`]): dense layers, layer normalisation, multi-head
//! self-attention, feed-forward blocks, 1-D convolutions, stacked
//! autoencoders, SGD/Adam optimizers and dropout.
//!
//! # Architecture
//!
//! * [`Param`] — a shared, thread-safe parameter tensor (value + accumulated
//!   gradient). Params — and therefore every layer and model built from
//!   them — are `Send + Sync`: weights are snapshotted lock-free for
//!   inference while gradient state stays behind a training-only mutex
//!   (see the `param` module docs for the two paths).
//! * [`Session`] — wraps an autograd [`autograd::Tape`] for one forward /
//!   backward pass, registering every parameter used so gradients can be
//!   copied back after [`Session::backward`].
//! * [`Layer`] implementations — own their [`Param`]s and expose
//!   `forward(&self, session, input)`.
//! * [`optim`] — optimizers that update the values held by [`Param`]s using
//!   their accumulated gradients.
//!
//! # Example: one gradient step on a dense layer
//!
//! ```
//! use autograd::Tape;
//! use nn::{Dense, Init, Layer, Session};
//! use nn::optim::{Optimizer, Sgd};
//! use tensor::rng::SeededRng;
//! use tensor::Tensor;
//!
//! # fn main() -> Result<(), tensor::TensorError> {
//! let mut rng = SeededRng::new(0);
//! let dense = Dense::new(&mut rng, 4, 2, Init::Xavier);
//! let mut sgd = Sgd::new(0.1);
//!
//! let tape = Tape::new();
//! let session = Session::new(&tape, true, 42);
//! let x = session.constant(Tensor::ones(&[3, 4]));
//! let out = dense.forward(&session, x)?;
//! let loss = out.softmax_cross_entropy(&[0, 1, 0])?;
//! session.backward(loss)?;
//! sgd.step(&dense.params());
//! # Ok(())
//! # }
//! ```
//!
//! [`vital`]: https://docs.rs/vital
//! [`baselines`]: https://docs.rs/baselines

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(clippy::disallowed_types)]
#![warn(rust_2018_idioms)]

mod attention;
mod autoencoder;
mod conv;
mod dense;
mod init;
mod layer_norm;
mod mlp;
pub mod optim;
mod param;
mod session;

pub use attention::MultiHeadSelfAttention;
pub use autoencoder::StackedAutoencoder;
pub use conv::Conv1d;
pub use dense::Dense;
pub use init::Init;
pub use layer_norm::LayerNorm;
pub use mlp::{Activation, Mlp};
pub use param::{weight_stamp, Param};
pub use session::Session;

/// Convenience alias for results returned by layer operations.
pub type Result<T> = std::result::Result<T, tensor::TensorError>;

/// Common interface of every trainable layer: exposing its parameters so an
/// optimizer (or a parameter counter) can reach them, and snapshotting /
/// restoring those parameters for model checkpoints.
pub trait Layer {
    /// All trainable parameters owned by this layer, in a stable order.
    fn params(&self) -> Vec<Param>;

    /// Total number of trainable scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Snapshot of every parameter — `(name, value)` pairs in the stable
    /// [`Layer::params`] order. This is the payload a model checkpoint
    /// persists; names are diagnostic, order is the contract.
    fn state_dict(&self) -> Vec<(String, tensor::Tensor)> {
        self.params()
            .iter()
            .map(|p| (p.name(), p.value()))
            .collect()
    }

    /// Restores every parameter from a [`Layer::state_dict`] snapshot of a
    /// layer with the same architecture. Entries are matched positionally
    /// and validated by shape, so the restored layer's forward pass is
    /// bit-identical to the snapshotted one.
    ///
    /// # Errors
    /// Returns [`tensor::TensorError::LengthMismatch`] if the entry count
    /// differs from this layer's parameter count, or
    /// [`tensor::TensorError::ShapeMismatch`] if any entry's shape differs
    /// from the corresponding parameter's.
    fn load_state(&self, state: &[(String, tensor::Tensor)]) -> Result<()> {
        let params = self.params();
        if params.len() != state.len() {
            return Err(tensor::TensorError::LengthMismatch {
                provided: state.len(),
                expected: params.len(),
            });
        }
        for (param, (_, value)) in params.iter().zip(state) {
            if !param.value().shape().same_as(value.shape()) {
                return Err(tensor::TensorError::ShapeMismatch {
                    op: "load_state",
                    lhs: param.value().shape().dims().to_vec(),
                    rhs: value.shape().dims().to_vec(),
                });
            }
        }
        for (param, (_, value)) in params.iter().zip(state) {
            param.set_value(value.clone());
        }
        Ok(())
    }
}

/// Compile-time proof that the parameter stack is thread-safe: if [`Param`]
/// (or any layer built from it) regresses to `Rc`/`RefCell` interior
/// mutability, this fails the **build** of this crate — long before the
/// serve layer would notice at its spawn sites.
#[allow(dead_code)]
fn _assert_layers_are_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<Param>();
    assert::<Dense>();
    assert::<Conv1d>();
    assert::<LayerNorm>();
    assert::<Mlp>();
    assert::<MultiHeadSelfAttention>();
    assert::<StackedAutoencoder>();
}
