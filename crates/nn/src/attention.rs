use autograd::Var;
use tensor::rng::SeededRng;
use tensor::TensorError;

use crate::{Dense, Init, Layer, Param, Result, Session};

/// Multi-head self-attention (MSA) over a sequence of embedded patches.
///
/// This is the attention sub-block of the VITAL transformer encoder
/// (paper §V.B, eqs. (1)–(4)): the input sequence `X ∈ ℝ^{N×D}` is projected
/// into queries, keys and values per head, scaled dot-product attention is
/// computed per head, the head outputs are concatenated and projected back to
/// the model dimension with `W_o`.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    query: Dense,
    key: Dense,
    value: Dense,
    output: Dense,
    heads: usize,
    d_model: usize,
    head_dim: usize,
}

impl MultiHeadSelfAttention {
    /// Creates an MSA block with `heads` attention heads over a model
    /// dimension of `d_model`.
    ///
    /// # Errors
    /// Returns an error if `d_model` is not divisible by `heads` or either is
    /// zero.
    pub fn new(rng: &mut SeededRng, d_model: usize, heads: usize) -> Result<Self> {
        if heads == 0 || d_model == 0 || !d_model.is_multiple_of(heads) {
            return Err(TensorError::ShapeMismatch {
                op: "msa.new",
                lhs: vec![d_model],
                rhs: vec![heads],
            });
        }
        Ok(MultiHeadSelfAttention {
            query: Dense::new(rng, d_model, d_model, Init::Xavier),
            key: Dense::new(rng, d_model, d_model, Init::Xavier),
            value: Dense::new(rng, d_model, d_model, Init::Xavier),
            output: Dense::new(rng, d_model, d_model, Init::Xavier),
            heads,
            d_model,
            head_dim: d_model / heads,
        })
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model (embedding) dimension.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Applies self-attention to a `[seq_len, d_model]` sequence.
    ///
    /// # Errors
    /// Returns an error if the input feature width differs from `d_model`.
    pub fn forward<'t>(&self, session: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        self.forward_stacked(session, x, 1)
    }

    /// Applies self-attention independently to `samples` sequences stacked
    /// as a `[samples * seq_len, d_model]` matrix.
    ///
    /// The Q/K/V and output projections run once over the whole stack (one
    /// large GEMM each), and every `(sample, head)` score block is
    /// row-concatenated into a single `[samples * heads * seq_len, seq_len]`
    /// matrix so the attention weighting is **one** batched softmax sweep
    /// through the runtime-dispatched SIMD kernel. Softmax is row-wise, so
    /// the result is bit-identical to attending each sample alone.
    ///
    /// # Errors
    /// Returns an error if the row count is not a multiple of `samples` or
    /// the feature width differs from `d_model`.
    pub fn forward_stacked<'t>(
        &self,
        session: &Session<'t>,
        x: Var<'t>,
        samples: usize,
    ) -> Result<Var<'t>> {
        let rows = x.value().rows()?;
        if samples == 0 || !rows.is_multiple_of(samples) {
            return Err(TensorError::ShapeMismatch {
                op: "msa.forward_stacked",
                lhs: vec![rows],
                rhs: vec![samples],
            });
        }
        let seq_len = rows / samples;
        let q = self.query.forward(session, x)?;
        let k = self.key.forward(session, x)?;
        let v = self.value.forward(session, x)?;
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        // Dot-product similarity (eq. 2) per (sample, head) block...
        let mut scores = Vec::with_capacity(samples * self.heads);
        for s in 0..samples {
            let (qs, ks) = if samples == 1 {
                (q, k)
            } else {
                (
                    q.slice_rows(s * seq_len, (s + 1) * seq_len)?,
                    k.slice_rows(s * seq_len, (s + 1) * seq_len)?,
                )
            };
            for h in 0..self.heads {
                let start = h * self.head_dim;
                let end = start + self.head_dim;
                let qh = qs.slice_cols(start, end)?;
                let kh = ks.slice_cols(start, end)?;
                scores.push(qh.matmul(kh.transpose()?)?.scale(scale));
            }
        }
        // ...softmax weighting (eq. 1) as one batched sweep.
        let stacked_scores = if scores.len() == 1 {
            scores.pop().expect("at least one head")
        } else {
            Var::concat_rows(&scores)?
        };
        let attn_all = stacked_scores.softmax_rows()?;

        // attn · V per block, reassembled to `[samples * seq_len, d_model]`.
        let mut sample_outputs = Vec::with_capacity(samples);
        for s in 0..samples {
            let vs = if samples == 1 {
                v
            } else {
                v.slice_rows(s * seq_len, (s + 1) * seq_len)?
            };
            let mut head_outputs = Vec::with_capacity(self.heads);
            for h in 0..self.heads {
                let block = (s * self.heads + h) * seq_len;
                let attn = if samples * self.heads == 1 {
                    attn_all
                } else {
                    attn_all.slice_rows(block, block + seq_len)?
                };
                let start = h * self.head_dim;
                let vh = vs.slice_cols(start, start + self.head_dim)?;
                head_outputs.push(attn.matmul(vh)?);
            }
            // Concat(h1..hn) per sample (eq. 4)...
            sample_outputs.push(Var::concat_cols(&head_outputs)?);
        }
        let concat = if samples == 1 {
            sample_outputs.pop().expect("samples >= 1")
        } else {
            Var::concat_rows(&sample_outputs)?
        };
        // ...then the shared W_o projection over the whole stack.
        self.output.forward(session, concat)
    }

    /// Appends the attention sub-block to an expression graph, mirroring
    /// the eager [`MultiHeadSelfAttention::forward`] step for step.
    ///
    /// # Errors
    /// Returns a [`graph::GraphError`] on operand-shape mismatch.
    pub fn push_graph(
        &self,
        g: &mut graph::Graph,
        x: graph::ExprId,
    ) -> std::result::Result<graph::ExprId, graph::GraphError> {
        self.push_graph_stacked(g, x, 1)
    }

    /// Appends the stacked attention sub-block to an expression graph,
    /// mirroring [`MultiHeadSelfAttention::forward_stacked`] step for step.
    /// The `Q·Kᵀ` products compile to transposed-B GEMMs (no materialised
    /// transpose), each per-head `1/√d` scale fuses into its GEMM's output
    /// pass, and all `(sample, head)` score blocks feed **one** batched
    /// softmax kernel — bit-identical to the eager sequence at the plan's
    /// latched dispatch level.
    ///
    /// # Errors
    /// Returns a [`graph::GraphError`] on operand-shape mismatch or if the
    /// stacked row count does not divide into `samples`.
    pub fn push_graph_stacked(
        &self,
        g: &mut graph::Graph,
        x: graph::ExprId,
        samples: usize,
    ) -> std::result::Result<graph::ExprId, graph::GraphError> {
        let (rows, cols) = g.dims(x)?;
        if samples == 0 || !rows.is_multiple_of(samples) {
            return Err(graph::GraphError::Tensor(TensorError::ShapeMismatch {
                op: "msa.push_graph_stacked",
                lhs: vec![rows, cols],
                rhs: vec![samples],
            }));
        }
        let seq_len = rows / samples;
        let q = self.query.push_graph(g, x)?;
        let k = self.key.push_graph(g, x)?;
        let v = self.value.push_graph(g, x)?;
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut scores = Vec::with_capacity(samples * self.heads);
        for s in 0..samples {
            let (qs, ks) = if samples == 1 {
                (q, k)
            } else {
                (
                    g.slice_rows(q, s * seq_len, (s + 1) * seq_len)?,
                    g.slice_rows(k, s * seq_len, (s + 1) * seq_len)?,
                )
            };
            for h in 0..self.heads {
                let start = h * self.head_dim;
                let end = start + self.head_dim;
                let qh = g.slice_cols(qs, start, end)?;
                let kh = g.slice_cols(ks, start, end)?;
                let block = g.matmul(qh, kh, tensor::MatmulSpec::NT)?;
                scores.push(g.unary(block, tensor::UnaryOp::MulScalar(scale))?);
            }
        }
        let stacked_scores = if scores.len() == 1 {
            scores[0]
        } else {
            g.concat_rows(&scores)?
        };
        let attn_all = g.softmax_rows(stacked_scores)?;

        let mut sample_outputs = Vec::with_capacity(samples);
        for s in 0..samples {
            let vs = if samples == 1 {
                v
            } else {
                g.slice_rows(v, s * seq_len, (s + 1) * seq_len)?
            };
            let mut head_outputs = Vec::with_capacity(self.heads);
            for h in 0..self.heads {
                let block = (s * self.heads + h) * seq_len;
                let attn = if samples * self.heads == 1 {
                    attn_all
                } else {
                    g.slice_rows(attn_all, block, block + seq_len)?
                };
                let start = h * self.head_dim;
                let vh = g.slice_cols(vs, start, start + self.head_dim)?;
                head_outputs.push(g.matmul(attn, vh, tensor::MatmulSpec::NN)?);
            }
            sample_outputs.push(g.concat_cols(&head_outputs)?);
        }
        let concat = if samples == 1 {
            sample_outputs[0]
        } else {
            g.concat_rows(&sample_outputs)?
        };
        self.output.push_graph(g, concat)
    }
}

impl Layer for MultiHeadSelfAttention {
    fn params(&self) -> Vec<Param> {
        let mut params = self.query.params();
        params.extend(self.key.params());
        params.extend(self.value.params());
        params.extend(self.output.params());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;
    use tensor::Tensor;

    #[test]
    fn rejects_invalid_configuration() {
        let mut rng = SeededRng::new(0);
        assert!(MultiHeadSelfAttention::new(&mut rng, 10, 3).is_err());
        assert!(MultiHeadSelfAttention::new(&mut rng, 0, 1).is_err());
        assert!(MultiHeadSelfAttention::new(&mut rng, 8, 0).is_err());
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = SeededRng::new(1);
        let msa = MultiHeadSelfAttention::new(&mut rng, 16, 4).unwrap();
        assert_eq!(msa.heads(), 4);
        assert_eq!(msa.d_model(), 16);
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let x = session.constant(SeededRng::new(2).uniform_tensor(&[6, 16], -1.0, 1.0));
        let y = msa.forward(&session, x).unwrap();
        assert_eq!(y.value().shape().dims(), &[6, 16]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn param_count_is_four_projections() {
        let mut rng = SeededRng::new(3);
        let d = 12;
        let msa = MultiHeadSelfAttention::new(&mut rng, d, 3).unwrap();
        // 4 dense layers, each d*d weights + d biases.
        assert_eq!(msa.param_count(), 4 * (d * d + d));
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mut rng = SeededRng::new(4);
        let msa = MultiHeadSelfAttention::new(&mut rng, 8, 2).unwrap();
        let tape = Tape::new();
        let session = Session::new(&tape, true, 0);
        let x = session.constant(SeededRng::new(5).uniform_tensor(&[4, 8], -1.0, 1.0));
        let out = msa.forward(&session, x).unwrap();
        let loss = out.mean_pool_rows().unwrap().sum_all().unwrap();
        session.backward(loss).unwrap();
        let with_grad = msa.params().iter().filter(|p| p.grad().is_some()).count();
        assert_eq!(with_grad, msa.params().len());
    }

    #[test]
    fn attention_of_identical_tokens_is_uniform_mixture() {
        // If every token is identical, attention output rows must be equal.
        let mut rng = SeededRng::new(6);
        let msa = MultiHeadSelfAttention::new(&mut rng, 8, 2).unwrap();
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let row = SeededRng::new(7).uniform_tensor(&[8], -1.0, 1.0);
        let x = session.constant(row.tile_rows(5).unwrap());
        let y = msa.forward(&session, x).unwrap().value();
        let first = y.row(0).unwrap();
        for i in 1..5 {
            let other = y.row(i).unwrap();
            assert!(first.distance(&other).unwrap() < 1e-4);
        }
        let _ = Tensor::zeros(&[1]);
    }
}
