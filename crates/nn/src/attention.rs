use autograd::Var;
use tensor::rng::SeededRng;
use tensor::TensorError;

use crate::{Dense, Init, Layer, Param, Result, Session};

/// Multi-head self-attention (MSA) over a sequence of embedded patches.
///
/// This is the attention sub-block of the VITAL transformer encoder
/// (paper §V.B, eqs. (1)–(4)): the input sequence `X ∈ ℝ^{N×D}` is projected
/// into queries, keys and values per head, scaled dot-product attention is
/// computed per head, the head outputs are concatenated and projected back to
/// the model dimension with `W_o`.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    query: Dense,
    key: Dense,
    value: Dense,
    output: Dense,
    heads: usize,
    d_model: usize,
    head_dim: usize,
}

impl MultiHeadSelfAttention {
    /// Creates an MSA block with `heads` attention heads over a model
    /// dimension of `d_model`.
    ///
    /// # Errors
    /// Returns an error if `d_model` is not divisible by `heads` or either is
    /// zero.
    pub fn new(rng: &mut SeededRng, d_model: usize, heads: usize) -> Result<Self> {
        if heads == 0 || d_model == 0 || !d_model.is_multiple_of(heads) {
            return Err(TensorError::ShapeMismatch {
                op: "msa.new",
                lhs: vec![d_model],
                rhs: vec![heads],
            });
        }
        Ok(MultiHeadSelfAttention {
            query: Dense::new(rng, d_model, d_model, Init::Xavier),
            key: Dense::new(rng, d_model, d_model, Init::Xavier),
            value: Dense::new(rng, d_model, d_model, Init::Xavier),
            output: Dense::new(rng, d_model, d_model, Init::Xavier),
            heads,
            d_model,
            head_dim: d_model / heads,
        })
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model (embedding) dimension.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Applies self-attention to a `[seq_len, d_model]` sequence.
    ///
    /// # Errors
    /// Returns an error if the input feature width differs from `d_model`.
    pub fn forward<'t>(&self, session: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        let q = self.query.forward(session, x)?;
        let k = self.key.forward(session, x)?;
        let v = self.value.forward(session, x)?;
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let end = start + self.head_dim;
            let qh = q.slice_cols(start, end)?;
            let kh = k.slice_cols(start, end)?;
            let vh = v.slice_cols(start, end)?;
            // Dot-product similarity (eq. 2), softmax weighting (eq. 1).
            let scores = qh.matmul(kh.transpose()?)?.scale(scale);
            let attn = scores.softmax_rows()?;
            head_outputs.push(attn.matmul(vh)?);
        }
        // Concat(h1..hn) W_o (eq. 4).
        let concat = Var::concat_cols(&head_outputs)?;
        self.output.forward(session, concat)
    }

    /// Appends the attention sub-block to an expression graph, mirroring
    /// the eager [`MultiHeadSelfAttention::forward`] step for step. The
    /// `Q·Kᵀ` product compiles to a transposed-B GEMM (no materialised
    /// transpose), and the per-head `1/√d` scale fuses into that GEMM's
    /// output pass — both bit-identical to the eager sequence.
    ///
    /// # Errors
    /// Returns a [`graph::GraphError`] on operand-shape mismatch.
    pub fn push_graph(
        &self,
        g: &mut graph::Graph,
        x: graph::ExprId,
    ) -> std::result::Result<graph::ExprId, graph::GraphError> {
        let q = self.query.push_graph(g, x)?;
        let k = self.key.push_graph(g, x)?;
        let v = self.value.push_graph(g, x)?;
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let end = start + self.head_dim;
            let qh = g.slice_cols(q, start, end)?;
            let kh = g.slice_cols(k, start, end)?;
            let vh = g.slice_cols(v, start, end)?;
            let scores = g.matmul(qh, kh, tensor::MatmulSpec::NT)?;
            let scaled = g.unary(scores, tensor::UnaryOp::MulScalar(scale))?;
            let attn = g.softmax_rows(scaled)?;
            head_outputs.push(g.matmul(attn, vh, tensor::MatmulSpec::NN)?);
        }
        let concat = g.concat_cols(&head_outputs)?;
        self.output.push_graph(g, concat)
    }
}

impl Layer for MultiHeadSelfAttention {
    fn params(&self) -> Vec<Param> {
        let mut params = self.query.params();
        params.extend(self.key.params());
        params.extend(self.value.params());
        params.extend(self.output.params());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;
    use tensor::Tensor;

    #[test]
    fn rejects_invalid_configuration() {
        let mut rng = SeededRng::new(0);
        assert!(MultiHeadSelfAttention::new(&mut rng, 10, 3).is_err());
        assert!(MultiHeadSelfAttention::new(&mut rng, 0, 1).is_err());
        assert!(MultiHeadSelfAttention::new(&mut rng, 8, 0).is_err());
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = SeededRng::new(1);
        let msa = MultiHeadSelfAttention::new(&mut rng, 16, 4).unwrap();
        assert_eq!(msa.heads(), 4);
        assert_eq!(msa.d_model(), 16);
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let x = session.constant(SeededRng::new(2).uniform_tensor(&[6, 16], -1.0, 1.0));
        let y = msa.forward(&session, x).unwrap();
        assert_eq!(y.value().shape().dims(), &[6, 16]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn param_count_is_four_projections() {
        let mut rng = SeededRng::new(3);
        let d = 12;
        let msa = MultiHeadSelfAttention::new(&mut rng, d, 3).unwrap();
        // 4 dense layers, each d*d weights + d biases.
        assert_eq!(msa.param_count(), 4 * (d * d + d));
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mut rng = SeededRng::new(4);
        let msa = MultiHeadSelfAttention::new(&mut rng, 8, 2).unwrap();
        let tape = Tape::new();
        let session = Session::new(&tape, true, 0);
        let x = session.constant(SeededRng::new(5).uniform_tensor(&[4, 8], -1.0, 1.0));
        let out = msa.forward(&session, x).unwrap();
        let loss = out.mean_pool_rows().unwrap().sum_all().unwrap();
        session.backward(loss).unwrap();
        let with_grad = msa.params().iter().filter(|p| p.grad().is_some()).count();
        assert_eq!(with_grad, msa.params().len());
    }

    #[test]
    fn attention_of_identical_tokens_is_uniform_mixture() {
        // If every token is identical, attention output rows must be equal.
        let mut rng = SeededRng::new(6);
        let msa = MultiHeadSelfAttention::new(&mut rng, 8, 2).unwrap();
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let row = SeededRng::new(7).uniform_tensor(&[8], -1.0, 1.0);
        let x = session.constant(row.tile_rows(5).unwrap());
        let y = msa.forward(&session, x).unwrap().value();
        let first = y.row(0).unwrap();
        for i in 1..5 {
            let other = y.row(i).unwrap();
            assert!(first.distance(&other).unwrap() < 1e-4);
        }
        let _ = Tensor::zeros(&[1]);
    }
}
