//! Gradient-descent optimizers operating on [`Param`]s.

use std::collections::HashMap;

use tensor::Tensor;

use crate::Param;

/// Common interface of optimizers: apply one update step using the gradients
/// currently accumulated in the given parameters.
///
/// Optimizers do **not** clear gradients; call [`Param::zero_grad`] after the
/// step (or use [`zero_grads`]).
pub trait Optimizer {
    /// Applies one update to every parameter that currently holds a gradient.
    fn step(&mut self, params: &[Param]);
}

/// Clears the gradient of every parameter in the slice.
pub fn zero_grads(params: &[Param]) {
    for p in params {
        p.zero_grad();
    }
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Sgd {
            learning_rate,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[Param]) {
        for p in params {
            let Some(grad) = p.grad() else { continue };
            let update = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.key())
                    .or_insert_with(|| grad.zeros_like());
                *v = v
                    .scale(self.momentum)
                    .add(&grad)
                    .expect("velocity and grad share the parameter shape");
                v.clone()
            } else {
                grad
            };
            p.set_value(
                p.value()
                    .sub(&update.scale(self.learning_rate))
                    .expect("update shares the parameter shape"),
            );
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias-corrected moment estimates.
#[derive(Debug)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    moments: HashMap<usize, (Tensor, Tensor)>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            moments: HashMap::new(),
        }
    }

    /// Adam with explicit betas.
    pub fn with_betas(learning_rate: f32, beta1: f32, beta2: f32) -> Self {
        Adam {
            learning_rate,
            beta1,
            beta2,
            eps: 1e-8,
            step_count: 0,
            moments: HashMap::new(),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Param]) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for p in params {
            let Some(grad) = p.grad() else { continue };
            let (m, v) = self
                .moments
                .entry(p.key())
                .or_insert_with(|| (grad.zeros_like(), grad.zeros_like()));
            *m = m
                .scale(self.beta1)
                .add(&grad.scale(1.0 - self.beta1))
                .expect("moment shares the parameter shape");
            *v = v
                .scale(self.beta2)
                .add(&grad.mul(&grad).expect("same shape").scale(1.0 - self.beta2))
                .expect("moment shares the parameter shape");
            let m_hat = m.scale(1.0 / bias1);
            let v_hat = v.scale(1.0 / bias2);
            let eps = self.eps;
            let denom = v_hat.map(|x| x.sqrt() + eps);
            let update = m_hat
                .div(&denom)
                .expect("same shape")
                .scale(self.learning_rate);
            p.set_value(
                p.value()
                    .sub(&update)
                    .expect("update shares the parameter shape"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) {
        // f(x) = 0.5 * ||x||^2, grad = x
        p.zero_grad();
        p.accumulate_grad(&p.value());
    }

    #[test]
    fn sgd_descends_quadratic() {
        let p = Param::new("x", Tensor::from_vec(vec![10.0, -6.0], &[2]).unwrap());
        let mut sgd = Sgd::new(0.1);
        assert_eq!(sgd.learning_rate(), 0.1);
        for _ in 0..100 {
            quadratic_grad(&p);
            sgd.step(std::slice::from_ref(&p));
        }
        assert!(p.value().norm() < 1e-3);
    }

    #[test]
    fn sgd_with_momentum_descends_faster_than_plain() {
        let run = |mut opt: Box<dyn Optimizer>| {
            let p = Param::new("x", Tensor::from_vec(vec![5.0], &[1]).unwrap());
            for _ in 0..20 {
                quadratic_grad(&p);
                opt.step(std::slice::from_ref(&p));
            }
            p.value().abs().max().unwrap()
        };
        let plain = run(Box::new(Sgd::new(0.05)));
        let momentum = run(Box::new(Sgd::with_momentum(0.05, 0.9)));
        assert!(momentum < plain);
    }

    #[test]
    fn adam_descends_quadratic() {
        let p = Param::new("x", Tensor::from_vec(vec![3.0, -2.0, 1.0], &[3]).unwrap());
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            quadratic_grad(&p);
            adam.step(std::slice::from_ref(&p));
        }
        assert!(p.value().norm() < 1e-2);
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn optimizers_skip_params_without_grad() {
        let p = Param::new("x", Tensor::ones(&[2]));
        let before = p.value();
        Sgd::new(0.5).step(std::slice::from_ref(&p));
        Adam::new(0.5).step(std::slice::from_ref(&p));
        assert_eq!(p.value(), before);
    }

    #[test]
    fn zero_grads_clears_all() {
        let a = Param::new("a", Tensor::ones(&[1]));
        let b = Param::new("b", Tensor::ones(&[1]));
        a.accumulate_grad(&Tensor::ones(&[1]));
        b.accumulate_grad(&Tensor::ones(&[1]));
        zero_grads(&[a.clone(), b.clone()]);
        assert!(a.grad().is_none());
        assert!(b.grad().is_none());
    }

    #[test]
    fn adam_with_betas_constructor() {
        let adam = Adam::with_betas(0.01, 0.8, 0.95);
        assert_eq!(adam.learning_rate(), 0.01);
        assert_eq!(adam.steps(), 0);
    }
}
