use autograd::Var;
use tensor::rng::SeededRng;

use crate::{Dense, Init, Layer, Param, Result, Session};

/// Non-linearity applied between the hidden layers of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Gaussian error linear unit — used by the transformer encoder MLP and
    /// classification head in the paper.
    #[default]
    Gelu,
    /// Rectified linear unit — used by several comparison baselines.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid — used by the stacked-autoencoder baselines.
    Sigmoid,
    /// No activation (linear layer stack).
    Identity,
}

impl Activation {
    fn apply<'t>(self, x: Var<'t>) -> Var<'t> {
        match self {
            Activation::Gelu => x.gelu(),
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Identity => x,
        }
    }

    /// The named elementwise op this activation evaluates, or `None` for
    /// [`Activation::Identity`]. The eager forwards and the compiled-graph
    /// kernels share these ops, so both paths run the same scalar code.
    pub fn unary_op(self) -> Option<tensor::UnaryOp> {
        match self {
            Activation::Gelu => Some(tensor::UnaryOp::Gelu),
            Activation::Relu => Some(tensor::UnaryOp::Relu),
            Activation::Tanh => Some(tensor::UnaryOp::Tanh),
            Activation::Sigmoid => Some(tensor::UnaryOp::Sigmoid),
            Activation::Identity => None,
        }
    }
}

/// A multi-layer perceptron: a stack of [`Dense`] layers with a shared
/// activation between them (no activation after the final layer).
///
/// The paper uses two-layer GELU MLPs both inside the transformer encoder
/// (128 → 64 units) and as the fine-tuning classification head
/// (128 → `num_classes`).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    activation: Activation,
    dropout: f32,
}

impl Mlp {
    /// Creates an MLP whose layer widths are `sizes` (e.g. `[64, 128, 10]`
    /// builds two dense layers `64→128` and `128→10`).
    ///
    /// # Panics
    /// Panics if fewer than two sizes are supplied.
    pub fn new(rng: &mut SeededRng, sizes: &[usize], activation: Activation) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least an input and an output width"
        );
        let init = match activation {
            Activation::Relu => Init::He,
            _ => Init::Xavier,
        };
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(rng, w[0], w[1], init))
            .collect();
        Mlp {
            layers,
            activation,
            dropout: 0.0,
        }
    }

    /// Enables dropout (applied after each hidden activation) and returns the
    /// modified MLP, builder-style.
    pub fn with_dropout(mut self, rate: f32) -> Self {
        self.dropout = rate;
        self
    }

    /// Number of dense layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Output width of the final layer.
    pub fn out_features(&self) -> usize {
        self.layers
            .last()
            .map(Dense::out_features)
            .unwrap_or_default()
    }

    /// Applies the MLP to a `[batch, in_features]` variable.
    ///
    /// # Errors
    /// Returns an error if the input width does not match the first layer.
    pub fn forward<'t>(&self, session: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(session, h)?;
            if i != last {
                h = self.activation.apply(h);
                if self.dropout > 0.0 {
                    h = session.dropout(h, self.dropout)?;
                }
            }
        }
        Ok(h)
    }

    /// Appends the MLP to an expression graph: dense layers with the
    /// activation between them (none after the last), exactly mirroring
    /// the eval-mode [`Mlp::forward`]. Dropout is an identity in eval mode
    /// and is therefore not represented in the graph.
    ///
    /// # Errors
    /// Returns a [`graph::GraphError`] on operand-shape mismatch.
    pub fn push_graph(
        &self,
        g: &mut graph::Graph,
        x: graph::ExprId,
    ) -> std::result::Result<graph::ExprId, graph::GraphError> {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.push_graph(g, h)?;
            if i != last {
                if let Some(op) = self.activation.unary_op() {
                    h = g.unary(h, op)?;
                }
            }
        }
        Ok(h)
    }
}

impl Layer for Mlp {
    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;
    use tensor::Tensor;

    #[test]
    fn builds_correct_layer_stack() {
        let mut rng = SeededRng::new(0);
        let mlp = Mlp::new(&mut rng, &[6, 128, 64], Activation::Gelu);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.out_features(), 64);
        assert_eq!(mlp.param_count(), 6 * 128 + 128 + 128 * 64 + 64);
    }

    #[test]
    #[should_panic(expected = "at least an input and an output width")]
    fn rejects_single_size() {
        let mut rng = SeededRng::new(0);
        let _ = Mlp::new(&mut rng, &[4], Activation::Relu);
    }

    #[test]
    fn forward_shapes_for_each_activation() {
        for act in [
            Activation::Gelu,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            let mut rng = SeededRng::new(1);
            let mlp = Mlp::new(&mut rng, &[5, 8, 3], act);
            let tape = Tape::new();
            let session = Session::new(&tape, false, 0);
            let x = session.constant(Tensor::ones(&[4, 5]));
            let y = mlp.forward(&session, x).unwrap();
            assert_eq!(y.value().shape().dims(), &[4, 3]);
            assert!(y.value().all_finite());
        }
    }

    #[test]
    fn dropout_only_affects_training_mode() {
        let mut rng = SeededRng::new(2);
        let mlp = Mlp::new(&mut rng, &[4, 16, 2], Activation::Relu).with_dropout(0.5);
        let x = Tensor::ones(&[1, 4]);

        let tape_eval = Tape::new();
        let s_eval = Session::new(&tape_eval, false, 9);
        let y_eval_a = mlp
            .forward(&s_eval, s_eval.constant(x.clone()))
            .unwrap()
            .value();
        let tape_eval2 = Tape::new();
        let s_eval2 = Session::new(&tape_eval2, false, 10);
        let y_eval_b = mlp
            .forward(&s_eval2, s_eval2.constant(x.clone()))
            .unwrap()
            .value();
        // Eval mode is deterministic regardless of seed.
        assert_eq!(y_eval_a, y_eval_b);

        let tape_train = Tape::new();
        let s_train = Session::new(&tape_train, true, 11);
        let y_train = mlp.forward(&s_train, s_train.constant(x)).unwrap().value();
        // Training output will almost surely differ due to dropout.
        assert_ne!(y_eval_a, y_train);
    }

    #[test]
    fn learns_xor() {
        // Small end-to-end training sanity check for the full layer stack.
        use crate::optim::{Adam, Optimizer};
        let mut rng = SeededRng::new(3);
        let mlp = Mlp::new(&mut rng, &[2, 16, 2], Activation::Tanh);
        let mut adam = Adam::new(0.02);
        let inputs =
            Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]).unwrap();
        let targets = [0usize, 1, 1, 0];
        let mut last_loss = f32::MAX;
        for step in 0..300 {
            let tape = Tape::new();
            let session = Session::new(&tape, true, step);
            let x = session.constant(inputs.clone());
            let logits = mlp.forward(&session, x).unwrap();
            let loss = logits.softmax_cross_entropy(&targets).unwrap();
            last_loss = loss.value().item().unwrap();
            session.backward(loss).unwrap();
            adam.step(&mlp.params());
            for p in mlp.params() {
                p.zero_grad();
            }
        }
        assert!(last_loss < 0.1, "XOR did not converge: loss {last_loss}");
        // Check predictions.
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let logits = mlp
            .forward(&session, session.constant(inputs))
            .unwrap()
            .value();
        assert_eq!(logits.argmax_rows().unwrap(), vec![0, 1, 1, 0]);
    }
}
