use autograd::Var;
use tensor::Tensor;

use crate::{Layer, Param, Result, Session};

/// Layer normalisation with learnable per-feature scale and shift.
///
/// Applied before every MSA and MLP sub-block in the VITAL transformer
/// encoder ("we used layer normalization before each MSA and MLP sub-block",
/// paper §V.B).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    features: usize,
}

impl LayerNorm {
    /// Creates a layer-norm over `features`-wide rows with ε = 1e-5.
    pub fn new(features: usize) -> Self {
        LayerNorm::with_eps(features, 1e-5)
    }

    /// Creates a layer-norm with an explicit ε.
    pub fn with_eps(features: usize, eps: f32) -> Self {
        LayerNorm {
            gamma: Param::new(format!("ln.gamma[{features}]"), Tensor::ones(&[features])),
            beta: Param::new(format!("ln.beta[{features}]"), Tensor::zeros(&[features])),
            eps,
            features,
        }
    }

    /// Feature width this layer normalises over.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Normalises each row of a `[rows, features]` variable.
    ///
    /// # Errors
    /// Returns an error if the input's column count differs from `features`.
    pub fn forward<'t>(&self, session: &Session<'t>, x: Var<'t>) -> Result<Var<'t>> {
        let gamma = session.param(&self.gamma);
        let beta = session.param(&self.beta);
        x.layer_norm(gamma, beta, self.eps)
    }

    /// Appends this normalisation to an expression graph, snapshotting
    /// γ/β as constants. Compiles to the fused one-pass layer-norm kernel,
    /// which evaluates the same per-element arithmetic as the eager
    /// standardise → scale → shift sequence.
    ///
    /// # Errors
    /// Returns a [`graph::GraphError`] on operand-shape mismatch.
    pub fn push_graph(
        &self,
        g: &mut graph::Graph,
        x: graph::ExprId,
    ) -> std::result::Result<graph::ExprId, graph::GraphError> {
        let gamma = g.constant(self.gamma.value())?;
        let beta = g.constant(self.beta.value())?;
        g.layer_norm(x, gamma, beta, self.eps)
    }
}

impl Layer for LayerNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;
    use tensor::rng::SeededRng;

    #[test]
    fn normalises_rows() {
        let ln = LayerNorm::new(8);
        assert_eq!(ln.features(), 8);
        assert_eq!(ln.param_count(), 16);
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let x = session.constant(SeededRng::new(0).uniform_tensor(&[4, 8], -50.0, 10.0));
        let y = ln.forward(&session, x).unwrap().value();
        for i in 0..4 {
            let row = y.row(i).unwrap();
            assert!(row.mean().abs() < 1e-4);
            assert!((row.variance() - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn gradients_reach_gamma_beta() {
        let ln = LayerNorm::new(3);
        let tape = Tape::new();
        let session = Session::new(&tape, true, 0);
        let x = session.constant(SeededRng::new(1).uniform_tensor(&[2, 3], -1.0, 1.0));
        let loss = ln
            .forward(&session, x)
            .unwrap()
            .softmax_cross_entropy(&[0, 2])
            .unwrap();
        session.backward(loss).unwrap();
        for p in ln.params() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn feature_mismatch_errors() {
        let ln = LayerNorm::new(4);
        let tape = Tape::new();
        let session = Session::new(&tape, false, 0);
        let x = session.constant(Tensor::ones(&[2, 3]));
        assert!(ln.forward(&session, x).is_err());
    }
}
