use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use tensor::Tensor;

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Option<Tensor>,
}

/// A shared, mutable, named parameter tensor.
///
/// Layers own `Param`s; cloning a `Param` clones the *handle* (both clones
/// refer to the same underlying value), which is how the optimizer and the
/// layer see consistent state.
#[derive(Clone)]
pub struct Param(Rc<RefCell<ParamInner>>);

impl Param {
    /// Creates a parameter with a diagnostic name and an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param(Rc::new(RefCell::new(ParamInner {
            name: name.into(),
            value,
            grad: None,
        })))
    }

    /// The parameter's diagnostic name.
    pub fn name(&self) -> String {
        self.0.borrow().name.clone()
    }

    /// A copy of the current value.
    pub fn value(&self) -> Tensor {
        self.0.borrow().value.clone()
    }

    /// Replaces the current value.
    pub fn set_value(&self, value: Tensor) {
        self.0.borrow_mut().value = value;
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.0.borrow().value.len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The accumulated gradient, if any backward pass has deposited one.
    pub fn grad(&self) -> Option<Tensor> {
        self.0.borrow().grad.clone()
    }

    /// Adds `grad` into the accumulated gradient.
    ///
    /// # Panics
    /// Panics if the gradient shape does not match the value shape; this is a
    /// programming error in layer code rather than a user input error.
    pub fn accumulate_grad(&self, grad: &Tensor) {
        let mut inner = self.0.borrow_mut();
        assert!(
            grad.shape().same_as(inner.value.shape()),
            "gradient shape {:?} does not match parameter {} shape {:?}",
            grad.shape().dims(),
            inner.name,
            inner.value.shape().dims()
        );
        inner.grad = Some(match inner.grad.take() {
            Some(existing) => existing.add(grad).expect("shapes verified above"),
            None => grad.clone(),
        });
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.0.borrow_mut().grad = None;
    }

    /// Stable identity key for this parameter (used by optimizers to store
    /// per-parameter state such as Adam moments).
    pub fn key(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("Param")
            .field("name", &inner.name)
            .field("shape", &inner.value.shape().dims().to_vec())
            .field("has_grad", &inner.grad.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let p = Param::new("w", Tensor::ones(&[2, 2]));
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        p.set_value(Tensor::zeros(&[2, 2]));
        assert_eq!(p.value().sum(), 0.0);
    }

    #[test]
    fn clones_share_state() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        let q = p.clone();
        q.set_value(Tensor::ones(&[2]));
        assert_eq!(p.value().sum(), 2.0);
        assert_eq!(p.key(), q.key());
    }

    #[test]
    fn gradient_accumulates_and_clears() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        assert!(p.grad().is_none());
        p.accumulate_grad(&Tensor::ones(&[3]));
        p.accumulate_grad(&Tensor::ones(&[3]));
        assert_eq!(p.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn mismatched_gradient_panics() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        p.accumulate_grad(&Tensor::ones(&[2]));
    }

    #[test]
    fn distinct_params_have_distinct_keys() {
        let a = Param::new("a", Tensor::zeros(&[1]));
        let b = Param::new("b", Tensor::zeros(&[1]));
        assert_ne!(a.key(), b.key());
    }
}
