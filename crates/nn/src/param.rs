//! Shared, thread-safe model parameters.
//!
//! A [`Param`] is a handle to one named weight tensor; cloning the handle
//! shares the underlying storage, which is how a layer and an optimizer see
//! consistent state. Since the serving refactor the handle is `Send + Sync`
//! and splits its state into two paths:
//!
//! * **Inference path** — [`Param::value`] snapshots the current weights.
//!   Thanks to the `tensor` crate's `Arc`-backed storage the snapshot is an
//!   `O(1)` reference bump taken under a briefly-held read lock; the weight
//!   *data* itself is then read with no lock at all, from the same shared
//!   allocation, by every tape and every concurrent inference worker.
//!   During serving no writer exists, so the read lock is never contended.
//! * **Training path** — gradients ([`Param::grad`],
//!   [`Param::accumulate_grad`], [`Param::zero_grad`]) live behind a
//!   separate mutex that only the training-session machinery
//!   ([`crate::Session::backward`] deposits, [`crate::optim`] consumes)
//!   ever touches, and in-place weight updates ([`Param::set_value`])
//!   swap the value atomically under the write lock. Inference never
//!   takes either lock path.
//!
//! A regression to single-threaded interior mutability (`Rc`/`RefCell`)
//! fails the build: see the compile-time assertions at the bottom of this
//! module and the workspace-wide `clippy::disallowed_types` ban on
//! `std::rc::Rc`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use tensor::Tensor;

struct ParamInner {
    name: String,
    /// Current weights. Readers snapshot the `Arc`-backed tensor in `O(1)`;
    /// only the training path ([`Param::set_value`]) ever write-locks.
    value: RwLock<Tensor>,
    /// Accumulated gradient — training-path state, never touched by
    /// inference.
    grad: Mutex<Option<Tensor>>,
    /// Monotonic update counter, bumped by every [`Param::set_value`].
    /// Compiled-plan caches fold these into a weight stamp so a plan built
    /// against stale weights is detected in `O(params)` without comparing
    /// tensor data.
    version: AtomicU64,
}

/// A shared, named, thread-safe parameter tensor.
///
/// Layers own `Param`s; cloning a `Param` clones the *handle* (both clones
/// refer to the same underlying value), which is how the optimizer and the
/// layer see consistent state — and how N inference workers serve from one
/// set of weights without copying them.
#[derive(Clone)]
pub struct Param(Arc<ParamInner>);

impl Param {
    /// Creates a parameter with a diagnostic name and an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param(Arc::new(ParamInner {
            name: name.into(),
            value: RwLock::new(value),
            grad: Mutex::new(None),
            version: AtomicU64::new(0),
        }))
    }

    /// The parameter's diagnostic name.
    pub fn name(&self) -> String {
        self.0.name.clone()
    }

    /// A snapshot of the current value.
    ///
    /// `O(1)`: the returned tensor shares the parameter's `Arc`-backed
    /// storage (copy-on-write protects it from later updates), so the hot
    /// inference path reads weight data without locks or copies.
    pub fn value(&self) -> Tensor {
        self.0.value.read().expect("param lock poisoned").clone()
    }

    /// Replaces the current value (training path: optimizer steps and
    /// checkpoint restores).
    ///
    /// Concurrent readers keep the snapshot they already took; the swap is
    /// atomic under the write lock, so no reader ever observes a torn
    /// value.
    pub fn set_value(&self, value: Tensor) {
        *self.0.value.write().expect("param lock poisoned") = value;
        self.0.version.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of updates this parameter has received (monotonic; starts at
    /// zero). Plan caches mix the versions of every model parameter into a
    /// weight stamp, so any `set_value` anywhere invalidates plans compiled
    /// against the old weights.
    pub fn version(&self) -> u64 {
        self.0.version.load(Ordering::Relaxed)
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.0.value.read().expect("param lock poisoned").len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The accumulated gradient, if any backward pass has deposited one.
    pub fn grad(&self) -> Option<Tensor> {
        self.0.grad.lock().expect("param lock poisoned").clone()
    }

    /// Adds `grad` into the accumulated gradient (training path; called by
    /// [`crate::Session::backward`]).
    ///
    /// # Panics
    /// Panics if the gradient shape does not match the value shape; this is a
    /// programming error in layer code rather than a user input error.
    pub fn accumulate_grad(&self, grad: &Tensor) {
        let value_shape = self.0.value.read().expect("param lock poisoned");
        assert!(
            grad.shape().same_as(value_shape.shape()),
            "gradient shape {:?} does not match parameter {} shape {:?}",
            grad.shape().dims(),
            self.0.name,
            value_shape.shape().dims()
        );
        drop(value_shape);
        let mut slot = self.0.grad.lock().expect("param lock poisoned");
        *slot = Some(match slot.take() {
            Some(existing) => existing.add(grad).expect("shapes verified above"),
            None => grad.clone(),
        });
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.lock().expect("param lock poisoned") = None;
    }

    /// Stable identity key for this parameter (used by optimizers to store
    /// per-parameter state such as Adam moments).
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }
}

/// Folds the [`Param::version`] counters of a parameter list into one
/// stamp (FNV-1a over the version sequence).
///
/// Compiled-plan caches key their entries by this value: any `set_value`
/// on any listed parameter changes its version and therefore the stamp,
/// so plans whose constants were snapshotted from older weights are
/// recognisably stale in `O(params)` without touching tensor data. The
/// fold is order- and position-sensitive — two different version vectors
/// with equal sums still produce different stamps.
pub fn weight_stamp(params: &[Param]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in params {
        h = (h ^ p.version()).wrapping_mul(0x0000_0100_0000_01b3);
        h = (h ^ (h >> 32)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    h
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let value = self.0.value.read().expect("param lock poisoned");
        let has_grad = self.0.grad.lock().expect("param lock poisoned").is_some();
        f.debug_struct("Param")
            .field("name", &self.0.name)
            .field("shape", &value.shape().dims().to_vec())
            .field("has_grad", &has_grad)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let p = Param::new("w", Tensor::ones(&[2, 2]));
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        p.set_value(Tensor::zeros(&[2, 2]));
        assert_eq!(p.value().sum(), 0.0);
    }

    #[test]
    fn weight_stamp_tracks_any_update() {
        let a = Param::new("a", Tensor::zeros(&[2]));
        let b = Param::new("b", Tensor::zeros(&[2]));
        let params = [a.clone(), b.clone()];
        let s0 = weight_stamp(&params);
        assert_eq!(s0, weight_stamp(&params), "stamp is deterministic");
        a.set_value(Tensor::ones(&[2]));
        let s1 = weight_stamp(&params);
        assert_ne!(s0, s1);
        // Position-sensitive: bumping b instead of a gives a third value.
        b.set_value(Tensor::ones(&[2]));
        a.set_value(Tensor::zeros(&[2]));
        assert_ne!(weight_stamp(&params), s1);
    }

    #[test]
    fn version_counts_updates() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        assert_eq!(p.version(), 0);
        p.set_value(Tensor::ones(&[2]));
        p.set_value(Tensor::zeros(&[2]));
        assert_eq!(p.version(), 2);
        let q = p.clone();
        q.set_value(Tensor::ones(&[2]));
        assert_eq!(p.version(), 3, "clones share the version counter");
    }

    #[test]
    fn clones_share_state() {
        let p = Param::new("w", Tensor::zeros(&[2]));
        let q = p.clone();
        q.set_value(Tensor::ones(&[2]));
        assert_eq!(p.value().sum(), 2.0);
        assert_eq!(p.key(), q.key());
    }

    #[test]
    fn gradient_accumulates_and_clears() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        assert!(p.grad().is_none());
        p.accumulate_grad(&Tensor::ones(&[3]));
        p.accumulate_grad(&Tensor::ones(&[3]));
        assert_eq!(p.grad().unwrap().as_slice(), &[2.0, 2.0, 2.0]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn mismatched_gradient_panics() {
        let p = Param::new("w", Tensor::zeros(&[3]));
        p.accumulate_grad(&Tensor::ones(&[2]));
    }

    #[test]
    fn distinct_params_have_distinct_keys() {
        let a = Param::new("a", Tensor::zeros(&[1]));
        let b = Param::new("b", Tensor::zeros(&[1]));
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn snapshots_are_isolated_from_later_updates() {
        let p = Param::new("w", Tensor::ones(&[2]));
        let snapshot = p.value();
        p.set_value(Tensor::zeros(&[2]));
        assert_eq!(snapshot.as_slice(), &[1.0, 1.0], "snapshot must be stable");
        assert_eq!(p.value().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn concurrent_readers_see_consistent_values() {
        let p = Param::new("w", Tensor::full(&[64], 1.0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = &p;
                scope.spawn(move || {
                    for _ in 0..500 {
                        let v = p.value();
                        let first = v.as_slice()[0];
                        // Every element of a snapshot comes from one whole
                        // set_value — never a torn mix of two.
                        assert!(v.as_slice().iter().all(|&x| x == first));
                    }
                });
            }
            scope.spawn(|| {
                for i in 0..500 {
                    p.set_value(Tensor::full(&[64], i as f32));
                }
            });
        });
    }
}
