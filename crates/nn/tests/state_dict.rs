//! Checkpoint support for every layer: a freshly constructed layer of the
//! same architecture, restored from another layer's `state_dict`, must
//! produce bit-identical forward passes.

use autograd::Tape;
use nn::{
    Activation, Conv1d, Dense, Init, Layer, LayerNorm, Mlp, MultiHeadSelfAttention, Session,
    StackedAutoencoder,
};
use tensor::rng::SeededRng;
use tensor::{Tensor, TensorError};

/// Runs `layer`'s tape-free forward on `x` via a fresh inference session.
fn forward<L: Layer>(
    layer: &L,
    x: &Tensor,
    f: impl for<'t> Fn(&L, &Session<'t>, autograd::Var<'t>) -> nn::Result<autograd::Var<'t>>,
) -> Tensor {
    let tape = Tape::new();
    let session = Session::new(&tape, false, 0);
    f(layer, &session, session.constant(x.clone()))
        .unwrap()
        .value()
}

/// Asserts two tensors carry identical bit patterns.
fn assert_bits_equal(a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "forward passes diverged");
    }
}

#[test]
fn dense_round_trips_bit_exactly() {
    let mut rng_a = SeededRng::new(1);
    let mut rng_b = SeededRng::new(2);
    let original = Dense::new(&mut rng_a, 6, 4, Init::Xavier);
    let restored = Dense::new(&mut rng_b, 6, 4, Init::Xavier);
    restored.load_state(&original.state_dict()).unwrap();

    let x = SeededRng::new(3).uniform_tensor(&[5, 6], -1.0, 1.0);
    assert_bits_equal(
        &forward(&original, &x, |l, s, v| l.forward(s, v)),
        &forward(&restored, &x, |l, s, v| l.forward(s, v)),
    );
}

#[test]
fn layer_norm_round_trips_bit_exactly() {
    let original = LayerNorm::new(8);
    // Perturb the original away from its identity initialisation.
    original.params()[0].set_value(SeededRng::new(4).uniform_tensor(&[8], 0.5, 1.5));
    let restored = LayerNorm::new(8);
    restored.load_state(&original.state_dict()).unwrap();

    let x = SeededRng::new(5).uniform_tensor(&[3, 8], -2.0, 2.0);
    assert_bits_equal(
        &forward(&original, &x, |l, s, v| l.forward(s, v)),
        &forward(&restored, &x, |l, s, v| l.forward(s, v)),
    );
}

#[test]
fn conv1d_round_trips_bit_exactly() {
    let mut rng_a = SeededRng::new(6);
    let mut rng_b = SeededRng::new(7);
    let original = Conv1d::new(&mut rng_a, 3, 4, 1).unwrap();
    let restored = Conv1d::new(&mut rng_b, 3, 4, 1).unwrap();
    restored.load_state(&original.state_dict()).unwrap();

    let x = SeededRng::new(8).uniform_tensor(&[2, 10], -1.0, 1.0);
    assert_bits_equal(
        &forward(&original, &x, |l, s, v| l.forward(s, v)),
        &forward(&restored, &x, |l, s, v| l.forward(s, v)),
    );
}

#[test]
fn attention_round_trips_bit_exactly() {
    let mut rng_a = SeededRng::new(9);
    let mut rng_b = SeededRng::new(10);
    let original = MultiHeadSelfAttention::new(&mut rng_a, 16, 4).unwrap();
    let restored = MultiHeadSelfAttention::new(&mut rng_b, 16, 4).unwrap();
    restored.load_state(&original.state_dict()).unwrap();

    let x = SeededRng::new(11).uniform_tensor(&[7, 16], -1.0, 1.0);
    assert_bits_equal(
        &forward(&original, &x, |l, s, v| l.forward(s, v)),
        &forward(&restored, &x, |l, s, v| l.forward(s, v)),
    );
}

#[test]
fn mlp_round_trips_bit_exactly() {
    let mut rng_a = SeededRng::new(12);
    let mut rng_b = SeededRng::new(13);
    let original = Mlp::new(&mut rng_a, &[5, 9, 3], Activation::Gelu);
    let restored = Mlp::new(&mut rng_b, &[5, 9, 3], Activation::Gelu);
    restored.load_state(&original.state_dict()).unwrap();

    let x = SeededRng::new(14).uniform_tensor(&[4, 5], -1.0, 1.0);
    assert_bits_equal(
        &forward(&original, &x, |l, s, v| l.forward(s, v)),
        &forward(&restored, &x, |l, s, v| l.forward(s, v)),
    );
}

#[test]
fn autoencoder_round_trips_bit_exactly() {
    let mut rng_a = SeededRng::new(15);
    let mut rng_b = SeededRng::new(16);
    let original = StackedAutoencoder::new(&mut rng_a, 12, &[8, 4]);
    let restored = StackedAutoencoder::new(&mut rng_b, 12, &[8, 4]);
    restored.load_state(&original.state_dict()).unwrap();

    let x = SeededRng::new(17).uniform_tensor(&[3, 12], 0.0, 1.0);
    assert_bits_equal(
        &original.encode_inference(&x).unwrap(),
        &restored.encode_inference(&x).unwrap(),
    );
}

#[test]
fn state_dict_names_and_order_are_stable() {
    let mut rng = SeededRng::new(18);
    let mlp = Mlp::new(&mut rng, &[3, 4, 2], Activation::Relu);
    let names: Vec<String> = mlp.state_dict().into_iter().map(|(n, _)| n).collect();
    assert_eq!(
        names,
        vec!["dense.w[3x4]", "dense.b[4]", "dense.w[4x2]", "dense.b[2]"]
    );
}

#[test]
fn load_state_rejects_count_and_shape_mismatches() {
    let mut rng = SeededRng::new(19);
    let dense = Dense::new(&mut rng, 4, 2, Init::Xavier);

    let too_short = dense.state_dict()[..1].to_vec();
    assert!(matches!(
        dense.load_state(&too_short),
        Err(TensorError::LengthMismatch { .. })
    ));

    let mut wrong_shape = dense.state_dict();
    wrong_shape[0].1 = Tensor::zeros(&[4, 3]);
    assert!(matches!(
        dense.load_state(&wrong_shape),
        Err(TensorError::ShapeMismatch { .. })
    ));

    // A failed load must not partially mutate the layer.
    let before = dense.state_dict();
    let _ = dense.load_state(&wrong_shape);
    for ((_, a), (_, b)) in before.iter().zip(dense.state_dict().iter()) {
        assert_eq!(a, b, "failed load mutated parameters");
    }
}
