//! Wi-Fi RSSI fingerprint capture with smartphone heterogeneity.
//!
//! This crate layers *device heterogeneity* — the central challenge VITAL
//! addresses — on top of the device-independent radio channel provided by
//! [`sim_radio`]. Each smartphone model is described by a [`DeviceProfile`]
//! whose parameters reproduce the effects catalogued in §III of the paper:
//!
//! * **per-device RSSI offsets and gain skews** (different transceivers report
//!   different values at the same location),
//! * **device-pair similarity** (e.g. the HTC-U11 / Galaxy-S7 and
//!   iPhone-12 / Pixel-4 pairs show similar patterns),
//! * **missing APs** (an AP visible to one phone may be below another phone's
//!   sensitivity floor and be reported as −100 dB), and
//! * **measurement noise** that varies between devices.
//!
//! Fingerprints are captured exactly as in the paper: five RSSI samples per
//! reference point are reduced to their **min / max / mean**, forming the
//! three channels of each AP "pixel" consumed by the VITAL image creator.
//!
//! # Example
//!
//! ```
//! use fingerprint::{base_devices, DatasetConfig, FingerprintDataset};
//! use sim_radio::building_1;
//!
//! let building = building_1();
//! let dataset = FingerprintDataset::collect(
//!     &building,
//!     &base_devices(),
//!     &DatasetConfig { captures_per_rp: 1, samples_per_capture: 5, seed: 7 },
//! );
//! assert_eq!(dataset.num_aps(), building.access_points().len());
//! assert!(!dataset.observations().is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod capture;
mod dataset;
mod device;
mod devices;

pub use capture::{capture_observation, FingerprintObservation};
pub use dataset::{DatasetConfig, FingerprintDataset, TrainTestSplit};
pub use device::DeviceProfile;
pub use devices::{all_devices, base_devices, extended_devices};

/// RSSI value reported when an access point is not visible to the device.
pub const MISSING_AP_DBM: f32 = -100.0;
