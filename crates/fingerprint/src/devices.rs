//! The nine smartphone profiles used in the paper's evaluation.
//!
//! Table I lists the six *base* devices used for group training; Table II
//! lists the three *extended* devices held out entirely to test
//! generalisation to unseen hardware. The RF parameters are synthetic (the
//! paper does not publish transceiver characterisations) but are chosen to
//! reproduce the qualitative structure reported in §III / Fig. 1:
//!
//! * clear per-device offsets of several dB,
//! * two similar-behaving pairs (HTC ≈ S7, IPHONE ≈ PIXEL),
//! * different sensitivity floors, so some APs are missing on some devices.

use crate::DeviceProfile;

/// The six base devices of Table I (used for group training).
pub fn base_devices() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::new("BLU", "Vivo 8", "BLU", 2017, -4.5, 0.92, -88.0, 2.2)
            .with_compression(0.30)
            .with_band_offset(-5.0),
        DeviceProfile::new("HTC", "U11", "HTC", 2017, 3.0, 1.05, -94.0, 1.6)
            .with_compression(0.05)
            .with_band_offset(2.0),
        DeviceProfile::new("Samsung", "Galaxy S7", "S7", 2016, 2.2, 1.07, -93.0, 1.8)
            .with_compression(0.08)
            .with_band_offset(1.5),
        DeviceProfile::new("LG", "V20", "LG", 2016, -2.0, 0.97, -90.0, 2.0)
            .with_compression(0.20)
            .with_band_offset(-2.5),
        DeviceProfile::new("Motorola", "Z2", "MOTO", 2017, 5.5, 1.12, -86.0, 2.4)
            .with_compression(0.40)
            .with_band_offset(4.0),
        DeviceProfile::new("Oneplus", "OnePlus 3", "OP3", 2016, -6.0, 0.88, -91.0, 2.1)
            .with_compression(0.15)
            .with_band_offset(-6.0),
    ]
}

/// The three extended devices of Table II (never used for training).
pub fn extended_devices() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::new("Nokia", "Nokia 7.1", "NOKIA", 2018, -3.2, 1.10, -89.0, 2.3)
            .with_compression(0.35)
            .with_band_offset(-4.0),
        DeviceProfile::new("Google", "Pixel 4a", "PIXEL", 2020, 1.4, 0.94, -95.0, 1.4)
            .with_compression(0.10)
            .with_band_offset(2.5),
        DeviceProfile::new("Apple", "iPhone 12", "IPHONE", 2021, 1.8, 0.95, -96.0, 1.3)
            .with_compression(0.12)
            .with_band_offset(3.0),
    ]
}

/// All nine devices: base followed by extended.
pub fn all_devices() -> Vec<DeviceProfile> {
    let mut devices = base_devices();
    devices.extend(extended_devices());
    devices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_paper() {
        assert_eq!(base_devices().len(), 6);
        assert_eq!(extended_devices().len(), 3);
        assert_eq!(all_devices().len(), 9);
    }

    #[test]
    fn acronyms_match_tables() {
        let base: Vec<String> = base_devices().iter().map(|d| d.acronym.clone()).collect();
        assert_eq!(base, vec!["BLU", "HTC", "S7", "LG", "MOTO", "OP3"]);
        let ext: Vec<String> = extended_devices()
            .iter()
            .map(|d| d.acronym.clone())
            .collect();
        assert_eq!(ext, vec!["NOKIA", "PIXEL", "IPHONE"]);
    }

    #[test]
    fn similar_pairs_have_close_parameters() {
        let devices = all_devices();
        let get = |a: &str| devices.iter().find(|d| d.acronym == a).unwrap().clone();
        let htc = get("HTC");
        let s7 = get("S7");
        let iphone = get("IPHONE");
        let pixel = get("PIXEL");
        assert!((htc.gain_offset_db - s7.gain_offset_db).abs() < 1.5);
        assert!((iphone.gain_offset_db - pixel.gain_offset_db).abs() < 1.5);
        // ...but the pairs differ from each other.
        assert!((htc.gain_offset_db - pixel.gain_offset_db).abs() > 0.5);
    }

    #[test]
    fn devices_are_heterogeneous() {
        let devices = base_devices();
        let offsets: Vec<f32> = devices.iter().map(|d| d.gain_offset_db).collect();
        let max = offsets.iter().cloned().fold(f32::MIN, f32::max);
        let min = offsets.iter().cloned().fold(f32::MAX, f32::min);
        assert!(max - min > 8.0, "offset spread {}", max - min);
        let sens: Vec<f32> = devices.iter().map(|d| d.sensitivity_dbm).collect();
        let spread = sens.iter().cloned().fold(f32::MIN, f32::max)
            - sens.iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread >= 5.0, "sensitivity spread {spread}");
    }

    #[test]
    fn release_years_match_tables() {
        let years: Vec<u16> = base_devices().iter().map(|d| d.release_year).collect();
        assert_eq!(years, vec![2017, 2017, 2016, 2016, 2017, 2016]);
        let ext_years: Vec<u16> = extended_devices().iter().map(|d| d.release_year).collect();
        assert_eq!(ext_years, vec![2018, 2020, 2021]);
    }
}
