use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::MISSING_AP_DBM;

/// The RF personality of one smartphone model.
///
/// The profile maps a device-independent ("truth") RSSI value into the value
/// that this particular phone would report, reproducing the heterogeneity
/// effects analysed in §III of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Manufacturer (Table I/II column 1).
    pub manufacturer: String,
    /// Model (Table I/II column 2).
    pub model: String,
    /// Short acronym used in plots (Table I/II column 3).
    pub acronym: String,
    /// Release year (Table I/II column 4).
    pub release_year: u16,
    /// Constant RSSI offset in dB added by this transceiver/antenna.
    pub gain_offset_db: f32,
    /// Multiplicative skew applied to the signal relative to the
    /// [`DeviceProfile::PIVOT_DBM`] pivot: values ≠ 1.0 tilt the RSSI curve.
    pub gain_slope: f32,
    /// Sensitivity floor in dBm: truth RSSI below this is reported as a
    /// missing AP (−100 dB).
    pub sensitivity_dbm: f32,
    /// Probability of actually detecting an AP whose level is within the
    /// marginal zone just above the sensitivity floor.
    pub marginal_detection_prob: f64,
    /// Standard deviation of this device's measurement noise, in dB.
    pub noise_std_db: f32,
    /// Non-linear compression of weak signals: below
    /// [`DeviceProfile::COMPRESSION_KNEE_DBM`] the device under-reports by
    /// this fraction of the shortfall. Unlike a constant offset or linear
    /// slope, this effect is *not* removed by per-fingerprint normalisation,
    /// which is what keeps device heterogeneity a real problem for
    /// normalising frameworks (paper §III, "skews … are not fixed").
    pub weak_signal_compression: f32,
    /// Additional RSSI offset this device applies to 5 GHz access points
    /// relative to 2.4 GHz ones (antenna/band-dependent gain differences).
    pub band_offset_db: f32,
}

impl DeviceProfile {
    /// Pivot level (dBm) around which the gain slope tilts the response.
    pub const PIVOT_DBM: f32 = -55.0;
    /// Width of the marginal-detection zone above the sensitivity floor (dB).
    pub const MARGINAL_ZONE_DB: f32 = 8.0;
    /// Level (dBm) below which [`DeviceProfile::weak_signal_compression`]
    /// kicks in.
    pub const COMPRESSION_KNEE_DBM: f32 = -70.0;

    /// Creates a profile with explicit RF parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        manufacturer: &str,
        model: &str,
        acronym: &str,
        release_year: u16,
        gain_offset_db: f32,
        gain_slope: f32,
        sensitivity_dbm: f32,
        noise_std_db: f32,
    ) -> Self {
        DeviceProfile {
            manufacturer: manufacturer.to_string(),
            model: model.to_string(),
            acronym: acronym.to_string(),
            release_year,
            gain_offset_db,
            gain_slope,
            sensitivity_dbm,
            marginal_detection_prob: 0.65,
            noise_std_db,
            weak_signal_compression: 0.0,
            band_offset_db: 0.0,
        }
    }

    /// Sets the non-linear weak-signal compression factor (builder style).
    pub fn with_compression(mut self, compression: f32) -> Self {
        self.weak_signal_compression = compression.max(0.0);
        self
    }

    /// Sets the 5 GHz band offset in dB (builder style).
    pub fn with_band_offset(mut self, offset_db: f32) -> Self {
        self.band_offset_db = offset_db;
        self
    }

    /// The value this device reports for a single measurement of a truth RSSI
    /// level, including gain skew, offset, band-dependent gain, non-linear
    /// weak-signal compression, measurement noise, the sensitivity floor and
    /// probabilistic misses in the marginal zone.
    ///
    /// `is_5ghz` selects whether the band offset applies (the capturing code
    /// passes the AP's band).
    pub fn observe<R: Rng>(&self, truth_dbm: f32, is_5ghz: bool, rng: &mut R) -> f32 {
        if truth_dbm <= MISSING_AP_DBM {
            return MISSING_AP_DBM;
        }
        // Device-specific affine response curve.
        let mut skewed =
            Self::PIVOT_DBM + self.gain_slope * (truth_dbm - Self::PIVOT_DBM) + self.gain_offset_db;
        // Band-dependent antenna gain.
        if is_5ghz {
            skewed += self.band_offset_db;
        }
        // Non-linear compression of weak signals (not removable by
        // per-fingerprint normalisation).
        if skewed < Self::COMPRESSION_KNEE_DBM {
            skewed -= self.weak_signal_compression * (Self::COMPRESSION_KNEE_DBM - skewed);
        }
        // Measurement noise.
        let noise = standard_normal(rng) * self.noise_std_db;
        let measured = skewed + noise;

        if measured < self.sensitivity_dbm {
            return MISSING_AP_DBM;
        }
        // Marginal zone: APs barely above the floor are detected only
        // sometimes — this produces the "missing APs" problem across devices.
        if measured < self.sensitivity_dbm + Self::MARGINAL_ZONE_DB
            && !rng.gen_bool(self.marginal_detection_prob)
        {
            return MISSING_AP_DBM;
        }
        measured.clamp(MISSING_AP_DBM, 0.0)
    }

    /// A short display label, e.g. `"HTC (U11, 2017)"`.
    pub fn label(&self) -> String {
        format!("{} ({}, {})", self.acronym, self.model, self.release_year)
    }
}

fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(offset: f32, slope: f32, sensitivity: f32, noise: f32) -> DeviceProfile {
        DeviceProfile::new(
            "Acme",
            "Phone",
            "ACME",
            2020,
            offset,
            slope,
            sensitivity,
            noise,
        )
    }

    #[test]
    fn missing_input_stays_missing() {
        let p = profile(5.0, 1.0, -95.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.observe(MISSING_AP_DBM, false, &mut rng), MISSING_AP_DBM);
    }

    #[test]
    fn offset_shifts_reported_value() {
        let hot = profile(6.0, 1.0, -99.0, 0.0);
        let cold = profile(-6.0, 1.0, -99.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let truth = -60.0;
        let h = hot.observe(truth, false, &mut rng);
        let c = cold.observe(truth, false, &mut rng);
        assert!((h - (truth + 6.0)).abs() < 1e-5);
        assert!((c - (truth - 6.0)).abs() < 1e-5);
    }

    #[test]
    fn slope_tilts_far_signals_more_than_near() {
        let steep = profile(0.0, 1.2, -99.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        // At the pivot, slope has no effect.
        assert!(
            (steep.observe(DeviceProfile::PIVOT_DBM, false, &mut rng) - DeviceProfile::PIVOT_DBM)
                .abs()
                < 1e-5
        );
        // Far below the pivot the reported value is pushed further down.
        let far = steep.observe(-85.0, false, &mut rng);
        assert!(far < -85.0);
    }

    #[test]
    fn weak_signals_fall_below_sensitivity() {
        let deaf = profile(0.0, 1.0, -80.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(deaf.observe(-92.0, false, &mut rng), MISSING_AP_DBM);
        assert!(deaf.observe(-60.0, false, &mut rng) > MISSING_AP_DBM);
    }

    #[test]
    fn marginal_zone_detection_is_probabilistic() {
        let p = profile(0.0, 1.0, -90.0, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        // Truth a couple of dB above the floor: sometimes seen, sometimes not.
        let observations: Vec<f32> = (0..200)
            .map(|_| p.observe(-86.0, false, &mut rng))
            .collect();
        let missing = observations
            .iter()
            .filter(|v| **v == MISSING_AP_DBM)
            .count();
        assert!(missing > 20 && missing < 180, "missing = {missing}");
    }

    #[test]
    fn noise_produces_spread_measurements() {
        let p = profile(0.0, 1.0, -99.0, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let obs: Vec<f32> = (0..100)
            .map(|_| p.observe(-60.0, false, &mut rng))
            .collect();
        let mean = obs.iter().sum::<f32>() / obs.len() as f32;
        let var = obs.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / obs.len() as f32;
        assert!(var > 0.5, "variance {var}");
        assert!((mean + 60.0).abs() < 1.0);
    }

    #[test]
    fn label_contains_acronym_and_year() {
        let p = profile(0.0, 1.0, -90.0, 1.0);
        assert!(p.label().contains("ACME"));
        assert!(p.label().contains("2020"));
    }
}
