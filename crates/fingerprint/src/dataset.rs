use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sim_radio::{Building, Channel};

use crate::{capture_observation, DeviceProfile, FingerprintObservation};

/// Parameters of a fingerprint collection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// How many independent observations each device captures at each RP.
    pub captures_per_rp: usize,
    /// RSSI samples per observation burst (the paper uses 5, reduced to
    /// min/max/mean).
    pub samples_per_capture: usize,
    /// Seed for the whole campaign (device noise, fading, marginal misses).
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            captures_per_rp: 2,
            samples_per_capture: 5,
            seed: 0,
        }
    }
}

/// A labelled fingerprint dataset for one building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FingerprintDataset {
    building: String,
    num_aps: usize,
    num_rps: usize,
    observations: Vec<FingerprintObservation>,
}

/// A train/test partition of a [`FingerprintDataset`].
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training portion.
    pub train: FingerprintDataset,
    /// Held-out testing portion.
    pub test: FingerprintDataset,
}

impl FingerprintDataset {
    /// Runs a full collection campaign: every device captures
    /// `captures_per_rp` observations at every reference point of `building`.
    pub fn collect(building: &Building, devices: &[DeviceProfile], config: &DatasetConfig) -> Self {
        let channel = Channel::new(building, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5151));
        let mut observations = Vec::new();
        for device in devices {
            for rp in building.reference_points() {
                for _ in 0..config.captures_per_rp.max(1) {
                    observations.push(capture_observation(
                        &channel,
                        device,
                        rp,
                        config.samples_per_capture,
                        &mut rng,
                    ));
                }
            }
        }
        FingerprintDataset {
            building: building.name().to_string(),
            num_aps: building.access_points().len(),
            num_rps: building.reference_points().len(),
            observations,
        }
    }

    /// Builds a dataset directly from observations (used by tests and by
    /// augmentation pipelines).
    pub fn from_observations(
        building: impl Into<String>,
        num_aps: usize,
        num_rps: usize,
        observations: Vec<FingerprintObservation>,
    ) -> Self {
        FingerprintDataset {
            building: building.into(),
            num_aps,
            num_rps,
            observations,
        }
    }

    /// Name of the building the data was collected in.
    pub fn building(&self) -> &str {
        &self.building
    }

    /// Number of access points (pixels) per fingerprint.
    pub fn num_aps(&self) -> usize {
        self.num_aps
    }

    /// Number of reference points (classes).
    pub fn num_rps(&self) -> usize {
        self.num_rps
    }

    /// All observations.
    pub fn observations(&self) -> &[FingerprintObservation] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` when the dataset holds no observations.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The distinct device acronyms present, in first-seen order.
    pub fn devices(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for obs in &self.observations {
            if !seen.contains(&obs.device) {
                seen.push(obs.device.clone());
            }
        }
        seen
    }

    /// A new dataset containing only observations captured by the named
    /// devices.
    pub fn filter_devices(&self, acronyms: &[&str]) -> FingerprintDataset {
        FingerprintDataset {
            building: self.building.clone(),
            num_aps: self.num_aps,
            num_rps: self.num_rps,
            observations: self
                .observations
                .iter()
                .filter(|o| acronyms.contains(&o.device.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Random train/test split with the given training fraction, shuffled
    /// deterministically by `seed`. Matches the paper's ≈80/20 split.
    pub fn split(&self, train_fraction: f32, seed: u64) -> TrainTestSplit {
        let mut indices: Vec<usize> = (0..self.observations.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let train_len =
            ((self.observations.len() as f32) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let (train_idx, test_idx) = indices.split_at(train_len.min(indices.len()));
        let pick = |idx: &[usize]| {
            idx.iter()
                .map(|&i| self.observations[i].clone())
                .collect::<Vec<_>>()
        };
        TrainTestSplit {
            train: FingerprintDataset {
                building: self.building.clone(),
                num_aps: self.num_aps,
                num_rps: self.num_rps,
                observations: pick(train_idx),
            },
            test: FingerprintDataset {
                building: self.building.clone(),
                num_aps: self.num_aps,
                num_rps: self.num_rps,
                observations: pick(test_idx),
            },
        }
    }

    /// The class labels of every observation, in order.
    pub fn labels(&self) -> Vec<usize> {
        self.observations.iter().map(|o| o.rp_label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{base_devices, extended_devices};
    use sim_radio::building_1;

    fn small_dataset() -> FingerprintDataset {
        let building = building_1();
        FingerprintDataset::collect(
            &building,
            &base_devices()[..2],
            &DatasetConfig {
                captures_per_rp: 1,
                samples_per_capture: 3,
                seed: 11,
            },
        )
    }

    #[test]
    fn collection_size_is_devices_times_rps_times_captures() {
        let building = building_1();
        let ds = small_dataset();
        assert_eq!(ds.len(), 2 * building.reference_points().len());
        assert_eq!(ds.num_aps(), building.access_points().len());
        assert_eq!(ds.num_rps(), building.reference_points().len());
        assert_eq!(ds.building(), "Building 1");
        assert!(!ds.is_empty());
    }

    #[test]
    fn devices_and_filtering() {
        let ds = small_dataset();
        assert_eq!(ds.devices(), vec!["BLU".to_string(), "HTC".to_string()]);
        let only_htc = ds.filter_devices(&["HTC"]);
        assert_eq!(only_htc.devices(), vec!["HTC".to_string()]);
        assert_eq!(only_htc.len(), ds.len() / 2);
        // Filtering is non-destructive.
        assert_eq!(ds.len(), 2 * only_htc.len());
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let ds = small_dataset();
        let split = ds.split(0.8, 3);
        assert_eq!(split.train.len() + split.test.len(), ds.len());
        let expected_train = (ds.len() as f32 * 0.8).round() as usize;
        assert_eq!(split.train.len(), expected_train);
        // Deterministic given a seed.
        let again = ds.split(0.8, 3);
        assert_eq!(split.train.labels(), again.train.labels());
        // Different seed gives a different ordering (almost surely).
        let other = ds.split(0.8, 4);
        assert_ne!(split.train.labels(), other.train.labels());
    }

    #[test]
    fn labels_cover_reference_points() {
        let ds = small_dataset();
        let labels = ds.labels();
        assert_eq!(labels.len(), ds.len());
        let max = labels.iter().max().copied().unwrap();
        assert!(max < ds.num_rps());
        let min = labels.iter().min().copied().unwrap();
        assert_eq!(min, 0);
    }

    #[test]
    fn extended_devices_can_form_their_own_dataset() {
        let building = building_1();
        let ds = FingerprintDataset::collect(
            &building,
            &extended_devices(),
            &DatasetConfig {
                captures_per_rp: 1,
                samples_per_capture: 2,
                seed: 5,
            },
        );
        assert_eq!(ds.devices().len(), 3);
        assert_eq!(ds.len(), 3 * building.reference_points().len());
    }

    #[test]
    fn from_observations_round_trip() {
        let ds = small_dataset();
        let rebuilt = FingerprintDataset::from_observations(
            ds.building(),
            ds.num_aps(),
            ds.num_rps(),
            ds.observations().to_vec(),
        );
        assert_eq!(rebuilt, ds);
    }
}
