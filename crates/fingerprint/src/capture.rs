use rand::Rng;
use serde::{Deserialize, Serialize};

use sim_radio::{Channel, ReferencePoint};

use crate::{DeviceProfile, MISSING_AP_DBM};

/// One captured fingerprint observation: the min / max / mean over a burst of
/// RSSI samples taken by one device at one reference point.
///
/// The paper captures five samples per RP and reduces them to these three
/// statistics, which become the three channels of each AP "pixel" in the
/// VITAL RSSI image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FingerprintObservation {
    /// Reference-point label (classification target).
    pub rp_label: usize,
    /// Acronym of the device that captured the observation.
    pub device: String,
    /// Per-AP minimum RSSI over the burst.
    pub min: Vec<f32>,
    /// Per-AP maximum RSSI over the burst.
    pub max: Vec<f32>,
    /// Per-AP mean RSSI over the burst.
    pub mean: Vec<f32>,
}

impl FingerprintObservation {
    /// Number of access points covered by this observation.
    pub fn num_aps(&self) -> usize {
        self.mean.len()
    }

    /// The three channels interleaved per AP:
    /// `[min₀, max₀, mean₀, min₁, max₁, mean₁, …]` — the pixel layout used by
    /// the VITAL RSSI image creator.
    pub fn interleaved_channels(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.mean.len() * 3);
        for i in 0..self.mean.len() {
            out.push(self.min[i]);
            out.push(self.max[i]);
            out.push(self.mean[i]);
        }
        out
    }

    /// Just the mean channel (used by baselines that consume plain RSSI
    /// vectors).
    pub fn mean_channel(&self) -> &[f32] {
        &self.mean
    }

    /// Fraction of APs reported as missing (−100 dB) in the mean channel.
    pub fn missing_fraction(&self) -> f32 {
        if self.mean.is_empty() {
            return 0.0;
        }
        let missing = self
            .mean
            .iter()
            .filter(|v| **v <= MISSING_AP_DBM + 1e-6)
            .count();
        missing as f32 / self.mean.len() as f32
    }
}

/// Captures one observation: `samples` RSSI bursts by `device` at reference
/// point `rp` of the building behind `channel`, reduced to min/max/mean.
pub fn capture_observation<R: Rng>(
    channel: &Channel<'_>,
    device: &DeviceProfile,
    rp: &ReferencePoint,
    samples: usize,
    rng: &mut R,
) -> FingerprintObservation {
    let access_points = channel.building().access_points();
    let num_aps = access_points.len();
    let samples = samples.max(1);
    let mut min = vec![f32::MAX; num_aps];
    let mut max = vec![f32::MIN; num_aps];
    let mut sum = vec![0.0f32; num_aps];
    for _ in 0..samples {
        let truth = channel.sample_fingerprint(rp.position, rng);
        for (ap, &t) in truth.iter().enumerate() {
            let observed = device.observe(t, access_points[ap].is_5ghz(), rng);
            min[ap] = min[ap].min(observed);
            max[ap] = max[ap].max(observed);
            sum[ap] += observed;
        }
    }
    let mean: Vec<f32> = sum.iter().map(|s| s / samples as f32).collect();
    FingerprintObservation {
        rp_label: rp.id,
        device: device.acronym.clone(),
        min,
        max,
        mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_devices;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sim_radio::building_1;

    #[test]
    fn observation_has_consistent_channels() {
        let building = building_1();
        let channel = Channel::new(&building, 1);
        let device = &base_devices()[0];
        let mut rng = StdRng::seed_from_u64(0);
        let rp = &building.reference_points()[5];
        let obs = capture_observation(&channel, device, rp, 5, &mut rng);
        assert_eq!(obs.num_aps(), building.access_points().len());
        assert_eq!(obs.rp_label, 5);
        assert_eq!(obs.device, "BLU");
        for ap in 0..obs.num_aps() {
            assert!(obs.min[ap] <= obs.mean[ap] + 1e-5);
            assert!(obs.mean[ap] <= obs.max[ap] + 1e-5);
            assert!(obs.min[ap] >= MISSING_AP_DBM);
            assert!(obs.max[ap] <= 0.0);
        }
    }

    #[test]
    fn interleaved_channels_layout() {
        let obs = FingerprintObservation {
            rp_label: 0,
            device: "X".into(),
            min: vec![-90.0, -80.0],
            max: vec![-85.0, -75.0],
            mean: vec![-87.0, -77.0],
        };
        assert_eq!(
            obs.interleaved_channels(),
            vec![-90.0, -85.0, -87.0, -80.0, -75.0, -77.0]
        );
        assert_eq!(obs.mean_channel(), &[-87.0, -77.0]);
        assert_eq!(obs.missing_fraction(), 0.0);
    }

    #[test]
    fn different_devices_see_different_fingerprints_at_same_location() {
        let building = building_1();
        let channel = Channel::new(&building, 2);
        let devices = base_devices();
        let rp = &building.reference_points()[10];
        let mut rng = StdRng::seed_from_u64(3);
        let a = capture_observation(&channel, &devices[1], rp, 5, &mut rng); // HTC
        let b = capture_observation(&channel, &devices[5], rp, 5, &mut rng); // OP3

        // Mean absolute difference across APs should be clearly non-zero
        // (device heterogeneity), driven by the ~9 dB offset gap.
        let diff: f32 = a
            .mean
            .iter()
            .zip(&b.mean)
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / a.mean.len() as f32;
        assert!(diff > 2.0, "devices look identical: mean |Δ| = {diff}");
    }

    #[test]
    fn missing_ap_problem_exists_across_devices() {
        // At least one (RP, AP) pair should be visible on one device but
        // missing on another — the "missing APs" problem from §III.
        let building = building_1();
        let channel = Channel::new(&building, 4);
        let devices = base_devices();
        let sensitive = &devices[1]; // HTC, floor -94
        let deaf = &devices[4]; // MOTO, floor -86
        let mut rng = StdRng::seed_from_u64(5);
        let mut found = false;
        for rp in building.reference_points().iter().step_by(7) {
            let a = capture_observation(&channel, sensitive, rp, 5, &mut rng);
            let b = capture_observation(&channel, deaf, rp, 5, &mut rng);
            for ap in 0..a.num_aps() {
                if a.mean[ap] > MISSING_AP_DBM + 1.0 && b.mean[ap] <= MISSING_AP_DBM + 1e-6 {
                    found = true;
                }
            }
        }
        assert!(found, "no missing-AP discrepancy found between devices");
    }

    #[test]
    fn zero_samples_is_clamped_to_one() {
        let building = building_1();
        let channel = Channel::new(&building, 6);
        let device = &base_devices()[0];
        let mut rng = StdRng::seed_from_u64(7);
        let rp = &building.reference_points()[0];
        let obs = capture_observation(&channel, device, rp, 0, &mut rng);
        assert_eq!(obs.num_aps(), building.access_points().len());
        // With a single sample min == max == mean.
        for ap in 0..obs.num_aps() {
            assert_eq!(obs.min[ap], obs.max[ap]);
            assert_eq!(obs.min[ap], obs.mean[ap]);
        }
    }
}
